"""Workload registry: name -> factory."""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.graphchi import make_graphchi
from repro.workloads.leveldb import make_leveldb
from repro.workloads.metis import make_metis
from repro.workloads.nginx import make_nginx
from repro.workloads.redis import make_redis
from repro.workloads.xstream import make_xstream

_REGISTRY: dict[str, Callable[[], Workload]] = {
    "graphchi": make_graphchi,
    "xstream": make_xstream,
    "metis": make_metis,
    "leveldb": make_leveldb,
    "redis": make_redis,
    "nginx": make_nginx,
}

#: heterocontract anchor (``contract-registry``): ``make_*`` workload
#: factories deliberately NOT in the sweep registry, with the reason.
#: Every other factory under ``workloads/`` must be registered above
#: (statically enforced by ``repro lint --contracts``).
UNREGISTERED_FACTORIES = {
    "make_synthetic": (
        "parameterized generator for ad-hoc experiments, not a named "
        "Table 2 application"
    ),
    "make_memlat": (
        "latency-calibration microbenchmark (Figure 5 methodology), "
        "driven directly by its experiment module"
    ),
    "make_stream": (
        "bandwidth-calibration microbenchmark, driven directly by its "
        "experiment module"
    ),
    "make_graphchi_twitter": (
        "Figure 13 scaled variant, instantiated by the fig13 driver "
        "with its own footprint"
    ),
    "make_metis_big": (
        "Figure 13 scaled variant, instantiated by the fig13 driver "
        "with its own footprint"
    ),
    "make_lsm_store": (
        "extension workload; opt-in at runtime via register_workload"
    ),
    "make_tiered_analytics": (
        "extension workload; opt-in at runtime via register_workload"
    ),
}

#: The apps Figures 9-12 evaluate (NGinx excluded: <10% heterogeneity
#: impact, Section 5.3).
PLACEMENT_APPS = ("graphchi", "xstream", "metis", "leveldb", "redis")

#: All Table 2 applications.
ALL_APPS = tuple(_REGISTRY)


def make_workload(name: str) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_workloads() -> list[str]:
    return sorted(_REGISTRY)


def register_workload(name: str, factory: Callable[[], Workload]) -> None:
    """Register a custom workload factory."""
    if name in _REGISTRY:
        raise WorkloadError(f"workload {name!r} already registered")
    _REGISTRY[name] = factory
