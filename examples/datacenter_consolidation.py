#!/usr/bin/env python3
"""Multi-VM consolidation: max-min vs weighted DRF sharing (Figure 13).

Two guests — a GraphChi VM (6 GB heap, 1.5 GB hot) and a memory-hungry
Metis VM (8 GB heap, 5.4 GB hot) — share a machine with 4 GB FastMem and
8 GB SlowMem: 14 GB of demand on 12 GB of memory.  The sharing policy
decides who wins:

* Under single-resource **max-min**, Metis balloons out GraphChi's
  reserved-but-idle SlowMem early; when GraphChi grows, its memory is
  gone and it swaps.
* Under **weighted DRF**, Metis's dominant share (FastMem, weight 2)
  caps its appetite, and GraphChi's reservation survives.

Usage::

    python examples/datacenter_consolidation.py
"""

from __future__ import annotations

from repro.core import make_policy
from repro.experiments.sharing import fig13_devices, fig13_vmspecs
from repro.sim.multi_vm import MultiVmSimulation
from repro.vmm.drf import WeightedDrf
from repro.vmm.sharing import MaxMinSharing

EPOCHS = 160


def run_scenario(label, sharing_policy):
    sim = MultiVmSimulation(
        fig13_devices(), fig13_vmspecs("hetero-coordinated"),
        sharing_policy=sharing_policy,
    )
    results = sim.run(EPOCHS)
    print(f"\n=== {label} ===")
    for name, result in results.items():
        print(
            f"  {name:12s} runtime {result.runtime_sec:7.1f}s"
            f"   swapped-out {result.swap_pages_out / 1e3:7.0f}K pages"
        )
    total = sum(r.runtime_sec for r in results.values())
    print(f"  {'TOTAL':12s} runtime {total:7.1f}s")
    return results


def main() -> None:
    print("Machine: 4 GB FastMem + 8 GB SlowMem (L:5,B:9)")
    print("Guests : graphchi-vm <2x1GB, 1x4GB>, metis-vm <2x3GB, 1x4GB>")

    maxmin = run_scenario("single-resource max-min", MaxMinSharing())
    drf = run_scenario("weighted DRF (Algorithm 1)", WeightedDrf())

    graphchi_gain = (
        maxmin["graphchi-vm"].runtime_sec / drf["graphchi-vm"].runtime_sec
        - 1.0
    ) * 100
    print(
        f"\nDRF improves the GraphChi VM by {graphchi_gain:+.0f}% over "
        "max-min\nby refusing to hand its reserved SlowMem to the "
        "memory-hungry Metis VM\n(the paper measures +42% for the same "
        "scenario)."
    )


if __name__ == "__main__":
    main()
