#!/usr/bin/env python3
"""Writing your own placement policy and workload.

Demonstrates the two extension points downstream users need:

1. **Custom policy** — subclass :class:`PlacementPolicy`, register it,
   and it becomes available to ``run_experiment`` by name.  The example
   implements "WriteAware": a policy for asymmetric NVM (PCM stores are
   2-6x slower than loads, Table 1) that steers *write-heavy* page types
   to FastMem first — the Section 4.3 extension the paper sketches.
2. **Custom workload** — build a :class:`StatisticalWorkload` describing
   your application's memory signature and register it.

Usage::

    python examples/custom_policy.py
"""

from __future__ import annotations

from repro import gain_percent, run_experiment
from repro.core.policy import PlacementPolicy, register_policy
from repro.hw.memdevice import NVM_PCM
from repro.mem.extent import PageType
from repro.sim.runner import build_config
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload

#: Page types that are written intensively (logs, network buffers,
#: mutation-heavy heap) vs. read-mostly ones.
WRITE_HEAVY = {
    PageType.BUFFER_CACHE,
    PageType.NETWORK_BUFFER,
    PageType.HEAP,
}


@register_policy("write-aware")
class WriteAwarePolicy(PlacementPolicy):
    """Steer write-heavy pages to FastMem; read-mostly pages tolerate
    NVM's read latency far better than its store latency."""

    name = "write-aware"

    def node_preference(self, page_type: PageType) -> list[int]:
        if page_type in WRITE_HEAVY:
            return self.fast_first()
        return self.slow_first()


def make_log_structured_store() -> StatisticalWorkload:
    """A write-heavy LSM store: mutation-heavy memtable, write-ahead log
    churn, and read-mostly SSTable cache."""
    return StatisticalWorkload(
        name="lsm-store",
        mlp=5.0,
        instructions_per_epoch=200e6,
        accesses_per_epoch=2.0e6,
        io_wait_ns=30e6,
        metric="ops-per-sec",
        work_units_per_epoch=25_000,
        run_epochs=80,
        resident=[
            RegionSpec(
                "memtable", PageType.HEAP, 120_000, reuse=0.75,
                access_share=40.0, write_fraction=0.7,
            ),
            RegionSpec(
                "sst-cache", PageType.PAGE_CACHE, 200_000, reuse=0.8,
                access_share=35.0, write_fraction=0.05,
            ),
        ],
        churn=[
            ChurnSpec(
                "wal", PageType.BUFFER_CACHE, 4_000, 2, reuse=0.5,
                access_share=20.0, write_fraction=0.9,
            ),
            ChurnSpec(
                "compaction", PageType.HEAP, 1_500, 3, reuse=0.4,
                access_share=5.0, write_fraction=0.5,
            ),
        ],
    )


def main() -> None:
    # Slow tier is real PCM here (150 ns loads / 450 ns stores), not
    # throttled DRAM: write-awareness only matters on asymmetric devices.
    config = build_config(fast_ratio=0.25, slow_device=NVM_PCM)

    print("LSM store on DRAM FastMem + PCM SlowMem (1/4 capacity ratio)\n")
    baseline = run_experiment(
        make_log_structured_store(), "slowmem-only", config=config
    )
    for policy in ("heap-od", "write-aware", "hetero-lru"):
        result = run_experiment(
            make_log_structured_store(), policy, config=config
        )
        print(
            f"{policy:>12}: {result.metric_value:9.0f} ops/s "
            f"({gain_percent(result, baseline):+5.0f}% vs SlowMem-only)"
        )

    print(
        "\n'write-aware' beats heap-only placement by keeping the WAL and"
        "\nnetwork buffers off PCM's slow store path — the technology-"
        "\nspecific policy extension sketched in Section 4.3."
    )


if __name__ == "__main__":
    main()
