#!/usr/bin/env python3
"""Capacity planning: how much FastMem does each application need?

Sweeps the FastMem:SlowMem capacity ratio from 1/2 down to 1/32 (the
Figure 3 axis) for every Table 2 application under HeteroOS-LRU, and
reports the smallest ratio that stays within 25% of the unlimited-
FastMem ideal — the number a datacenter operator actually wants when
deciding how much 3D-stacked DRAM or DRAM-in-front-of-NVM to buy.

Usage::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import available_workloads, run_experiment, slowdown_factor

RATIOS = (1 / 2, 1 / 4, 1 / 8, 1 / 16, 1 / 32)
TARGET = 1.25  # within 25% of ideal
EPOCHS = 100


def main() -> None:
    header = "app       " + "".join(f"  1/{round(1/r):<4}" for r in RATIOS)
    print(header + "  smallest ratio within 25% of ideal")
    print("-" * len(header))

    for app in available_workloads():
        ideal = run_experiment(app, "fastmem-only", epochs=EPOCHS)
        slowdowns = []
        for ratio in RATIOS:
            result = run_experiment(
                app, "hetero-lru", fast_ratio=ratio, epochs=EPOCHS
            )
            slowdowns.append(slowdown_factor(result, ideal))
        verdicts = [s <= TARGET for s in slowdowns]
        smallest = "-"
        for ratio, ok in zip(RATIOS, verdicts):
            if ok:
                smallest = f"1/{round(1 / ratio)}"
        row = f"{app:10}" + "".join(f"  {s:5.2f}x" for s in slowdowns)
        print(f"{row}  {smallest}")

    print(
        "\nReading: 1.00x means HeteroOS-LRU matches unlimited FastMem at"
        "\nthat ratio.  I/O-diluted services (nginx, leveldb) need almost"
        "\nno FastMem; graph analytics keeps paying for more."
    )


if __name__ == "__main__":
    main()
