#!/usr/bin/env python3
"""Quickstart: compare HeteroOS against the baselines on one application.

Runs GraphChi (the paper's most memory-intensive workload) on the
Section 5.1 platform — 8 GB SlowMem (DRAM throttled to ~5x latency / ~9x
less bandwidth) plus 2 GB FastMem — under every placement policy, and
prints the gains over the naive SlowMem-only baseline.

Usage::

    python examples/quickstart.py [app]

where ``app`` is one of graphchi, xstream, metis, leveldb, redis, nginx
(default: graphchi).
"""

from __future__ import annotations

import sys

from repro import available_workloads, gain_percent, run_experiment

POLICIES = (
    "slowmem-only",
    "numa-preferred",
    "vmm-exclusive",
    "heap-od",
    "heap-io-slab-od",
    "hetero-lru",
    "hetero-coordinated",
    "fastmem-only",
)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "graphchi"
    if app not in available_workloads():
        raise SystemExit(
            f"unknown app {app!r}; choose from {available_workloads()}"
        )

    print(f"Application: {app}   (FastMem:SlowMem = 1/4, SlowMem = L:5,B:9)")
    print(f"{'policy':>20}  {'runtime':>10}  {'gain vs SlowMem-only':>22}")

    baseline = run_experiment(app, "slowmem-only", fast_ratio=0.25)
    for policy in POLICIES:
        if policy == "slowmem-only":
            result = baseline
        else:
            result = run_experiment(app, policy, fast_ratio=0.25)
        gain = gain_percent(result, baseline)
        print(f"{policy:>20}  {result.runtime_sec:>9.2f}s  {gain:>+21.0f}%")

    print(
        "\nThe HeteroOS ladder (heap-od -> heap-io-slab-od -> hetero-lru ->"
        "\nhetero-coordinated) reproduces Table 5; 'vmm-exclusive' is the"
        "\nHeteroVisor state of the art the paper improves on by up to 2x."
    )


if __name__ == "__main__":
    main()
