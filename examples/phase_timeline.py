#!/usr/bin/env python3
"""Watching a phase change through the policies' eyes.

GraphChi's hot vertex set drifts at epoch 120 (iteration-group change).
This example records per-epoch timeseries for HeteroOS-LRU (placement
only) and HeteroOS-coordinated (placement + hotness tracking) and prints
the stretch around the shift: the fraction of memory stall served by
FastMem collapses for both, but only the coordinated policy's tracker
migrates the new hot set back into FastMem.

Usage::

    python examples/phase_timeline.py
"""

from __future__ import annotations

from repro.core import make_policy
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config
from repro.workloads import make_workload

SHIFT_EPOCH = 120
WINDOW = (100, 180)


def record(policy_name: str) -> list[dict]:
    engine = SimulationEngine(
        build_config(fast_ratio=0.125),
        make_workload("graphchi"),
        make_policy(policy_name),
        record_timeseries=True,
    )
    engine.run(WINDOW[1] + 20)
    return engine.timeseries


def main() -> None:
    lru = record("hetero-lru")
    coordinated = record("hetero-coordinated")

    print(f"GraphChi @ 1/8 FastMem; hot set drifts at epoch {SHIFT_EPOCH}\n")
    print("epoch   runtime(ms)  [lru / coord]     fastmem-stall-share")
    for epoch in range(WINDOW[0], WINDOW[1], 8):
        a, b = lru[epoch], coordinated[epoch]
        marker = "  <-- phase shift" if epoch == SHIFT_EPOCH else ""
        print(
            f"{epoch:5d}   {a['runtime_ns'] / 1e6:7.0f} /"
            f" {b['runtime_ns'] / 1e6:5.0f}        "
            f"{a['fast_stall_fraction']:.2f} / "
            f"{b['fast_stall_fraction']:.2f}{marker}"
        )

    lru_tail = sum(r["runtime_ns"] for r in lru[SHIFT_EPOCH:]) / 1e9
    coord_tail = sum(r["runtime_ns"] for r in coordinated[SHIFT_EPOCH:]) / 1e9
    print(
        f"\npost-shift runtime: hetero-lru {lru_tail:.1f}s vs"
        f" hetero-coordinated {coord_tail:.1f}s"
        "\nOnly the tracker notices that yesterday's cold pages are"
        "\ntoday's hot ones — placement alone cannot repair the layout."
    )


if __name__ == "__main__":
    main()
