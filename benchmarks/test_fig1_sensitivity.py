"""Figure 1: bandwidth and latency sensitivity (16 MB LLC platform)."""

from conftest import once

from repro.experiments import run_fig1

MEMORY_INTENSIVE = ("graphchi", "xstream", "metis")
IO_DILUTED = ("leveldb", "nginx")


def test_fig1_sensitivity(benchmark, show):
    rows = once(benchmark, run_fig1, epochs=60)
    show(rows, "Figure 1: slowdown vs FastMem-only across throttle sweep")

    by_app = {row["app"]: row for row in rows}
    sweep = ["L:2,B:2", "L:5,B:5", "L:5,B:7", "L:5,B:9", "L:5,B:12"]
    for app, row in by_app.items():
        # Monotone: harsher throttling never speeds anything up.
        values = [row[c] for c in sweep]
        assert all(b >= a - 0.02 for a, b in zip(values, values[1:])), app
        assert values[0] >= 0.99, app

    # Memory-intensive graph apps suffer the most; I/O-diluted the least.
    worst = "L:5,B:12"
    for heavy in MEMORY_INTENSIVE:
        for light in IO_DILUTED:
            assert by_app[heavy][worst] > by_app[light][worst]
    # GraphChi/X-Stream see multi-x slowdowns; NGinx under ~1.4x.
    assert by_app["graphchi"][worst] > 3.0
    assert by_app["xstream"][worst] > 3.0
    assert by_app["nginx"][worst] < 1.5

    # Observation 2: remote-NUMA misplacement costs a fraction of
    # heterogeneous-memory misplacement (< ~30-40% vs multi-x).
    for app, row in by_app.items():
        assert row["remote-numa"] < 1.45, app
        if app in MEMORY_INTENSIVE:
            assert row[worst] > 2.0 * row["remote-numa"], app
