"""Table 5: the HeteroOS incremental mechanism ladder.

Verifies the ladder exists in the registry and that each increment is
implemented as a refinement of the previous one (subclassing — each level
carries everything below it, matching the paper's "incremental" framing).
"""

from conftest import once

from repro.core import make_policy
from repro.experiments import run_table5


def test_table5_mechanisms(benchmark, show):
    rows = once(benchmark, run_table5)
    show(rows, "Table 5: HeteroOS incremental mechanisms")

    names = [row["mechanism"] for row in rows]
    assert names == [
        "heap-od", "heap-io-slab-od", "hetero-lru", "hetero-coordinated",
    ]
    policies = [make_policy(name) for name in names]
    # Each rung is a refinement of the one below.
    for lower, higher in zip(policies, policies[1:]):
        assert isinstance(higher, type(lower)), (lower.name, higher.name)
