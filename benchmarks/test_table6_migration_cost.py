"""Table 6: per-page migration cost (page walk + page copy) vs batch."""

import pytest
from conftest import once

from repro.experiments import run_table6

PAPER_COSTS = {  # batch -> (move us, walk us)
    8 * 1024: (25.5, 43.21),
    64 * 1024: (15.7, 26.32),
    128 * 1024: (11.12, 10.25),
}


def test_table6_migration_cost(benchmark, show):
    rows = once(benchmark, run_table6)
    show(rows, "Table 6: per-page migration cost vs batch size")

    by_batch = {row["batch_pages"]: row for row in rows}
    for batch, (move_us, walk_us) in PAPER_COSTS.items():
        assert by_batch[batch]["t_page_move_us"] == pytest.approx(move_us)
        assert by_batch[batch]["t_page_walk_us"] == pytest.approx(walk_us)
    # Batching reduces both components; the walk drops faster ("cost of
    # page walk is even more expensive than actual migration" at small
    # batches, cheaper at 128K).
    batches = sorted(by_batch)
    for small, large in zip(batches, batches[1:]):
        assert by_batch[large]["t_page_move_us"] < by_batch[small]["t_page_move_us"]
        assert by_batch[large]["t_page_walk_us"] < by_batch[small]["t_page_walk_us"]
    assert by_batch[8 * 1024]["t_page_walk_us"] > by_batch[8 * 1024]["t_page_move_us"]
    assert by_batch[128 * 1024]["t_page_walk_us"] < by_batch[128 * 1024]["t_page_move_us"]
