"""Figure 7: Stream bandwidth vs working-set size (0.5 GB FastMem)."""

from conftest import once

from repro.experiments import run_fig7


def test_fig7_stream(benchmark, show):
    rows = once(benchmark, run_fig7)
    show(rows, "Figure 7: Stream bandwidth (GB/s)")

    by_wss = {row["wss_gib"]: row for row in rows}
    fits, exceeds = by_wss[0.5], by_wss[1.5]

    for row in rows:
        # FastMem-only is the ceiling, SlowMem-only the floor.
        assert row["fastmem-only"] >= row["heap-od"] * 0.98
        assert row["slowmem-only"] <= row["heap-od"] * 1.02
        assert (
            row["slowmem-only"] * 0.98
            <= row["random"]
            <= row["fastmem-only"] * 1.02
        )

    # On-demand allocation achieves near-ideal bandwidth when the WSS
    # fits FastMem, then falls toward SlowMem beyond it.
    assert fits["heap-od"] > 0.8 * fits["fastmem-only"]
    assert exceeds["heap-od"] < 0.5 * exceeds["fastmem-only"]
    # Migration-only management never reaches on-demand bandwidth for the
    # fitting working set.
    assert fits["vmm-exclusive"] < fits["heap-od"]
