"""Figure 4: application memory page distribution."""

from conftest import once

from repro.experiments import run_fig4


def test_fig4_page_mix(benchmark, show):
    rows = once(benchmark, run_fig4, epochs=100)
    show(rows, "Figure 4: page-type distribution and totals")

    by_app = {row["app"]: row for row in rows}
    # Redis is the network-buffer-intensive app of the suite.
    assert by_app["redis"]["nw-buff"] > 0.2
    assert by_app["redis"]["nw-buff"] == max(
        row["nw-buff"] for row in rows
    )
    # X-Stream and LevelDB are I/O-cache dominated.
    assert by_app["xstream"]["io-cache/mapped"] > 0.5
    assert by_app["leveldb"]["io-cache/mapped"] > 0.5
    # Metis is overwhelmingly anonymous heap.
    assert by_app["metis"]["heap/anon"] > 0.8
    # Totals: GraphChi allocates the most pages, LevelDB the fewest
    # (paper: 5.04M vs 0.53M).
    totals = {row["app"]: row["total_millions"] for row in rows}
    assert max(totals, key=totals.get) == "graphchi"
    assert min(totals, key=totals.get) == "leveldb"
    # Page-table pages are a negligible fraction everywhere (Section 3.2).
    for row in rows:
        assert row["pagetable"] < 0.01
    # Fractions are a proper distribution.
    for row in rows:
        total_fraction = sum(
            row[key]
            for key in (
                "heap/anon", "io-cache/mapped", "nw-buff", "slab", "pagetable"
            )
        )
        assert abs(total_fraction - 1.0) < 1e-6
