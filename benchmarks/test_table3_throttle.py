"""Table 3: DRAM throttling calibration points."""

from conftest import once

from repro.experiments import run_table3
from repro.hw.throttle import ThrottleConfig, throttled_device


def test_table3_throttle(benchmark, show):
    rows = once(benchmark, run_table3)
    show(rows, "Table 3: throttle configurations")

    by_config = {row["config"]: row for row in rows}
    # Exact paper values at the calibration points.
    assert by_config["L:1,B:1"]["latency_ns"] == 60.0
    assert by_config["L:1,B:1"]["bw_gbps"] == 24.0
    assert by_config["L:2,B:2"]["latency_ns"] == 128.0
    assert by_config["L:5,B:5"]["latency_ns"] == 354.0
    assert by_config["L:5,B:12"]["latency_ns"] == 960.0
    assert by_config["L:5,B:12"]["bw_gbps"] == 1.38

    # Interpolated settings used by the evaluation fall between anchors.
    for bandwidth_factor in (7, 9):
        device = throttled_device(ThrottleConfig(5, bandwidth_factor))
        assert 354.0 < device.load_latency_ns < 960.0
        assert 1.38 < device.bandwidth_gbps < 5.1
