"""Shared benchmark helpers.

Every benchmark prints its reproduced table/figure (visible with ``-s``)
and archives it under ``benchmarks/_results/`` so EXPERIMENTS.md can be
assembled from actual runs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.report import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


@pytest.fixture
def show():
    """Print and archive an experiment's rows."""

    def _show(rows, title: str, float_digits: int = 2) -> None:
        rendered = format_table(rows, title=title, float_digits=float_digits)
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = title.split(":")[0].strip().lower().replace(" ", "_")
        (RESULTS_DIR / f"{slug}.txt").write_text(rendered + "\n")

    return _show


def once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment drivers are deterministic whole-figure reproductions;
    repeating them for statistical timing would multiply minutes of work
    for no extra information.
    """
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
