"""Shared benchmark helpers.

Every benchmark prints its reproduced table/figure (visible with ``-s``)
and archives it under ``benchmarks/_results/`` so EXPERIMENTS.md can be
assembled from actual runs.

Experiment execution routes through :mod:`repro.sim.parallel`: the
figure drivers share one process-wide result memo, so a full benchmark
session simulates each distinct (app, policy, platform) point once no
matter how many drivers revisit it (Figure 10 reuses Figure 9's runs,
Table 4 reuses Figure 1's FastMem-only runs, ...).  The memo is cleared
at session start so pytest-benchmark timings start cold; setting
``REPRO_SWEEP_CACHE_DIR`` additionally persists results on disk across
sessions (the CI sweep-cache does this — source changes self-invalidate
via the cache key's source fingerprint).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.report import format_table
from repro.sim import parallel

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


@pytest.fixture(autouse=True, scope="session")
def experiment_memo():
    """Session-wide run memo: cold at start, dropped at exit."""
    parallel.clear_memo()
    yield
    parallel.clear_memo()


@pytest.fixture
def show():
    """Print and archive an experiment's rows."""

    def _show(rows, title: str, float_digits: int = 2) -> None:
        rendered = format_table(rows, title=title, float_digits=float_digits)
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = title.split(":")[0].strip().lower().replace(" ", "_")
        (RESULTS_DIR / f"{slug}.txt").write_text(rendered + "\n")

    return _show


def once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment drivers are deterministic whole-figure reproductions;
    repeating them for statistical timing would multiply minutes of work
    for no extra information.
    """
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
