"""Telemetry overhead budget: observation must stay near-free.

Two pinned ratios (ISSUE acceptance):

* carrying a *disabled* bus costs < 2% over the seed path (no bus at
  all) — the engine must take the identical code path;
* full sampling (in-memory timeline + profiler) costs < 25%.

Wall-clock comparisons are noisy, so each variant is timed best-of-N
over a fixed-epoch run and the *minimum* (least-interference) times are
compared.
"""

from __future__ import annotations

import time

from repro.core import make_policy
from repro.obs import PhaseProfiler, Telemetry
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config
from repro.workloads.registry import make_workload

EPOCHS = 40
ROUNDS = 5


def _time_run(telemetry) -> float:
    engine = SimulationEngine(
        build_config(fast_ratio=0.25),
        make_workload("redis"),
        make_policy("hetero-lru"),
        telemetry=telemetry,
    )
    start = time.perf_counter()
    engine.run(EPOCHS)
    return time.perf_counter() - start


def _best_of(make_telemetry) -> float:
    return min(_time_run(make_telemetry()) for _ in range(ROUNDS))


def test_perf_telemetry_overhead_budget(show):
    seed = _best_of(lambda: None)
    disabled = _best_of(lambda: Telemetry(enabled=False))
    sampling = _best_of(
        lambda: Telemetry(profiler=PhaseProfiler())
    )
    off_ratio = disabled / seed
    on_ratio = sampling / seed
    show(
        [
            {"variant": "seed (no bus)", "best_sec": seed, "ratio": 1.0},
            {
                "variant": "disabled bus",
                "best_sec": disabled,
                "ratio": off_ratio,
            },
            {
                "variant": "sampling + profiler",
                "best_sec": sampling,
                "ratio": on_ratio,
            },
        ],
        title="Perf telemetry: overhead vs seed path "
        f"({EPOCHS} epochs, best of {ROUNDS})",
        float_digits=4,
    )
    assert off_ratio < 1.02, f"disabled bus costs {off_ratio:.3f}x seed"
    assert on_ratio < 1.25, f"sampling costs {on_ratio:.3f}x seed"
