"""Table 1: heterogeneous memory characteristics."""

from conftest import once

from repro.experiments import run_table1


def test_table1_devices(benchmark, show):
    rows = once(benchmark, run_table1)
    show(rows, "Table 1: heterogeneous memory characteristics")

    by_name = {row["device"]: row for row in rows}
    stacked, dram, nvm = by_name["stacked-3d"], by_name["dram"], by_name["nvm-pcm"]
    # Latency ordering: stacked < DRAM < NVM; NVM stores slower than loads.
    assert stacked["load_ns"] < dram["load_ns"] < nvm["load_ns"]
    assert nvm["store_ns"] > nvm["load_ns"]
    # Bandwidth ordering: stacked > DRAM > NVM (8x-14x and 10x gaps).
    assert stacked["bw_gbps"] > 5 * dram["bw_gbps"]
    assert dram["bw_gbps"] > 5 * nvm["bw_gbps"]
    # Density ordering: NVM >> DRAM > stacked.
    assert nvm["density_x"] >= 16 * dram["density_x"]
    assert stacked["density_x"] < dram["density_x"]
