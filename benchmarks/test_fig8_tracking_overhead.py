"""Figure 8: VMM-exclusive hotness-tracking and migration overhead."""

from conftest import once

from repro.experiments import run_fig8


def test_fig8_tracking_overhead(benchmark, show):
    rows = once(benchmark, run_fig8, epochs=120)
    show(rows, "Figure 8: VMM-exclusive tracking+migration overhead")

    by_interval = {row["interval_ms"]: row for row in rows}
    fastest, slowest = by_interval[100], by_interval[500]

    # Overhead shrinks with longer intervals (paper: ~60% at 100 ms down
    # to ~32% at 500 ms).
    assert fastest["total_overhead_pct"] > slowest["total_overhead_pct"] * 1.5
    assert fastest["total_overhead_pct"] > 30.0
    assert slowest["total_overhead_pct"] > 5.0
    # Pages migrated shrink with the interval (paper: 3.1M -> 1.3M).
    assert (
        fastest["pages_migrated_millions"]
        > slowest["pages_migrated_millions"] * 1.5
    )
    # Observation 4: at the fastest interval, tracking costs at least as
    # much as the migrations themselves.
    assert (
        fastest["tracking_overhead_pct"]
        >= fastest["migration_overhead_pct"] * 0.8
    )
