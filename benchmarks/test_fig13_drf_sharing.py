"""Figure 13: multi-VM resource sharing (max-min vs weighted DRF)."""

from conftest import once

from repro.experiments import run_fig13


def test_fig13_drf_sharing(benchmark, show):
    rows = once(benchmark, run_fig13, epochs=160)
    show(rows, "Figure 13: multi-VM gains (%) over SlowMem-only floor")

    by_vm = {row["vm"]: row for row in rows}
    graphchi, metis = by_vm["graphchi-vm"], by_vm["metis-vm"]

    # Weighted DRF protects the GraphChi VM's SlowMem reservation from
    # the memory-hungry Metis VM (paper: +42% over max-min, +87% over
    # VMM-exclusive).
    assert (
        graphchi["coordinated(weighted-drf)"]
        > graphchi["coordinated(max-min)"]
    )
    assert (
        graphchi["coordinated(weighted-drf)"]
        > graphchi["vmm-exclusive(max-min)"]
    )
    # Coordinated management beats VMM-exclusive for both VMs under the
    # same sharing policy.
    for vm in (graphchi, metis):
        assert vm["coordinated(max-min)"] > vm["vmm-exclusive(max-min)"]
        # Contention: no multi-VM run beats the single-VM star.
        for scenario in (
            "vmm-exclusive(max-min)",
            "coordinated(max-min)",
            "coordinated(weighted-drf)",
        ):
            assert vm[scenario] <= vm["single-vm-coordinated"] + 5

    # Overall system performance improves under DRF: total completion
    # time across both VMs is no worse than max-min's (Section 5.5).
    totals = by_vm["TOTAL-runtime-sec"]
    assert (
        totals["coordinated(weighted-drf)"]
        <= totals["coordinated(max-min)"] * 1.02
    )
    assert (
        totals["coordinated(max-min)"]
        <= totals["vmm-exclusive(max-min)"]
    )
