"""Performance benchmarks of the simulator itself.

Unlike the figure benches (which run once and assert shapes), these are
real multi-round pytest-benchmark timings of the hot data structures —
the numbers that matter when someone scales the simulator up.

``test_bench_fast_path_trajectory`` additionally archives
``benchmarks/_results/BENCH_sim.json``: reference vs. array-backed
fast path (``repro.sim.fast``) on the heaviest workload, cold first
step, steady-state epochs/sec, and per-phase nanoseconds from the
PhaseProfiler.  The committed file is the perf trajectory reviewers
diff; the in-test assertion is a deliberately modest floor so shared
CI runners don't flake (see docs/performance.md for the measurement
protocol behind the committed numbers).
"""

import gc
import json
import os
import pathlib
import time

from repro.core import make_policy
from repro.guestos.buddy import BuddyAllocator
from repro.hw.cache import CacheConfig, LastLevelCache, RegionAccess
from repro.mem.frames import FramePool
from repro.obs.bus import Telemetry
from repro.obs.profiler import PhaseProfiler
from repro.sim.engine import SimulationEngine
from repro.sim.fast import HAS_NUMPY
from repro.sim.runner import build_config
from repro.units import MIB
from repro.workloads.registry import make_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"

#: Best-of-N measurement protocol for the trajectory bench: the 1-core
#: CI boxes see host steal time, so each configuration runs REPS times
#: and the minimum wall/per-phase time is kept (the rep least perturbed
#: by the neighbours).  The committed BENCH_sim.json is recorded with
#: the env knobs raised (see docs/performance.md); the defaults keep
#: the CI run short.
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "5"))
BENCH_WARMUP_EPOCHS = 4
BENCH_TIMED_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "150"))

#: CI floor for fast/reference end-to-end step() speedup.  The
#: committed BENCH_sim.json records the real trajectory (>= 3x end to
#: end, >= 10x on the hottest phase); this assertion only catches the
#: fast path silently degrading to parity.
MIN_END_TO_END_SPEEDUP = 1.5
MIN_HOTTEST_PHASE_SPEEDUP = 2.0


def test_perf_buddy_alloc_free_cycle(benchmark):
    buddy = BuddyAllocator(0, 262144)  # 1 GiB span

    def cycle():
        ranges = buddy.allocate_pages(5000)
        for frame_range in ranges:
            buddy.free_span(frame_range.start, frame_range.count)

    benchmark(cycle)
    buddy.check_invariants()


def test_perf_frame_pool_scattered(benchmark):
    pool = FramePool(0, 262144)

    def cycle():
        ranges = pool.allocate_scattered(10000)
        for frame_range in ranges:
            pool.free(frame_range)

    benchmark(cycle)
    pool.check_invariants()


def test_perf_cache_apportion(benchmark):
    cache = LastLevelCache(CacheConfig(capacity_bytes=16 * MIB))
    regions = [
        RegionAccess(f"r{i}", (i + 1) * MIB, 1000.0 * (i + 1), 300.0, 0.7)
        for i in range(64)
    ]
    results = benchmark(cache.apportion, regions)
    assert len(results) == 64


def test_perf_engine_epoch_throughput(benchmark):
    """Whole-engine epochs per second on the heaviest workload."""
    engine = SimulationEngine(
        build_config(fast_ratio=0.25),
        make_workload("graphchi"),
        make_policy("hetero-lru"),
    )
    stream = make_workload("graphchi").epochs(10**9)
    # Warm up allocations so steady-state epochs are measured.
    for _ in range(4):
        engine.step(next(stream))

    def one_epoch():
        engine.step(next(stream))

    benchmark(one_epoch)


def _one_rep(fast):
    """One timed repetition: (cold first-step sec, steady wall sec,
    per-phase seconds over the timed epochs)."""
    config = build_config(fast_ratio=0.25)
    config.fast_path = fast
    profiler = PhaseProfiler()
    engine = SimulationEngine(
        config,
        make_workload("graphchi"),
        make_policy("hetero-lru"),
        telemetry=Telemetry(profiler=profiler),
    )
    stream = iter(make_workload("graphchi").epochs(10**9))
    start = time.perf_counter()
    engine.step(next(stream))
    cold_sec = time.perf_counter() - start
    for _ in range(BENCH_WARMUP_EPOCHS - 1):
        engine.step(next(stream))
    profiler.seconds.clear()
    profiler.calls.clear()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(BENCH_TIMED_EPOCHS):
            engine.step(next(stream))
        wall_sec = time.perf_counter() - start
    finally:
        gc.enable()
    return cold_sec, wall_sec, dict(profiler.seconds)


def _best_of(fast):
    """Minimum cold/wall/per-phase times over BENCH_REPS repetitions."""
    colds, walls, phase_runs = [], [], []
    for _ in range(BENCH_REPS):
        cold_sec, wall_sec, phases = _one_rep(fast)
        colds.append(cold_sec)
        walls.append(wall_sec)
        phase_runs.append(phases)
    best_phases = {
        phase: min(run[phase] for run in phase_runs)
        for phase in phase_runs[0]
    }
    return min(colds), min(walls), best_phases


def _phase_ns(phases):
    """Per-epoch nanoseconds per phase, the unit BENCH_sim.json records."""
    return {
        phase: round(seconds / BENCH_TIMED_EPOCHS * 1e9)
        for phase, seconds in sorted(phases.items())
    }


def test_bench_fast_path_trajectory():
    ref_cold, ref_wall, ref_phases = _best_of(fast=False)
    fast_cold, fast_wall, fast_phases = _best_of(fast=True)

    assert set(ref_phases) == set(fast_phases)
    assert "demand" in ref_phases, sorted(ref_phases)

    hottest = max(ref_phases, key=ref_phases.get)
    hottest_speedup = ref_phases[hottest] / fast_phases[hottest]
    end_to_end_speedup = ref_wall / fast_wall

    payload = {
        "benchmark": (
            "SimulationEngine.step() reference vs repro.sim.fast "
            "(REPRO_FAST) steady state"
        ),
        "workload": "graphchi",
        "policy": "hetero-lru",
        "timed_epochs": BENCH_TIMED_EPOCHS,
        "reps_best_of": BENCH_REPS,
        "has_numpy": HAS_NUMPY,
        "reference": {
            "cold_first_step_sec": round(ref_cold, 4),
            "epochs_per_sec": round(BENCH_TIMED_EPOCHS / ref_wall, 1),
            "phase_ns_per_epoch": _phase_ns(ref_phases),
        },
        "fast": {
            "cold_first_step_sec": round(fast_cold, 4),
            "epochs_per_sec": round(BENCH_TIMED_EPOCHS / fast_wall, 1),
            "phase_ns_per_epoch": _phase_ns(fast_phases),
        },
        "hottest_phase": hottest,
        "hottest_phase_speedup": round(hottest_speedup, 2),
        "end_to_end_speedup": round(end_to_end_speedup, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sim.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\nfast path: {payload['reference']['epochs_per_sec']} -> "
        f"{payload['fast']['epochs_per_sec']} epochs/sec "
        f"({end_to_end_speedup:.2f}x end to end, {hottest_speedup:.2f}x "
        f"on hottest phase {hottest!r}, numpy={HAS_NUMPY})"
    )
    assert end_to_end_speedup >= MIN_END_TO_END_SPEEDUP, payload
    assert hottest_speedup >= MIN_HOTTEST_PHASE_SPEEDUP, payload
