"""Performance benchmarks of the simulator itself.

Unlike the figure benches (which run once and assert shapes), these are
real multi-round pytest-benchmark timings of the hot data structures —
the numbers that matter when someone scales the simulator up.
"""

from repro.core import make_policy
from repro.guestos.buddy import BuddyAllocator
from repro.hw.cache import CacheConfig, LastLevelCache, RegionAccess
from repro.mem.frames import FramePool
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config
from repro.units import MIB
from repro.workloads.registry import make_workload


def test_perf_buddy_alloc_free_cycle(benchmark):
    buddy = BuddyAllocator(0, 262144)  # 1 GiB span

    def cycle():
        ranges = buddy.allocate_pages(5000)
        for frame_range in ranges:
            buddy.free_span(frame_range.start, frame_range.count)

    benchmark(cycle)
    buddy.check_invariants()


def test_perf_frame_pool_scattered(benchmark):
    pool = FramePool(0, 262144)

    def cycle():
        ranges = pool.allocate_scattered(10000)
        for frame_range in ranges:
            pool.free(frame_range)

    benchmark(cycle)
    pool.check_invariants()


def test_perf_cache_apportion(benchmark):
    cache = LastLevelCache(CacheConfig(capacity_bytes=16 * MIB))
    regions = [
        RegionAccess(f"r{i}", (i + 1) * MIB, 1000.0 * (i + 1), 300.0, 0.7)
        for i in range(64)
    ]
    results = benchmark(cache.apportion, regions)
    assert len(results) == 64


def test_perf_engine_epoch_throughput(benchmark):
    """Whole-engine epochs per second on the heaviest workload."""
    engine = SimulationEngine(
        build_config(fast_ratio=0.25),
        make_workload("graphchi"),
        make_policy("hetero-lru"),
    )
    stream = make_workload("graphchi").epochs(10**9)
    # Warm up allocations so steady-state epochs are measured.
    for _ in range(4):
        engine.step(next(stream))

    def one_epoch():
        engine.step(next(stream))

    benchmark(one_epoch)
