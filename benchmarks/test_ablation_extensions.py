"""Ablations for the Section 4.3 extension policies.

Not paper figures — these benches quantify the design choices DESIGN.md
calls out for the future-work features the library implements:

* NVM write-awareness vs. read-hotness-only placement on PCM,
* three-tier (FAST/MEDIUM/SLOW) ladders vs. collapsing the middle tier,
* bare-metal native tracking vs. the virtualized coordinated stack.
"""

from conftest import once

from repro.core import make_policy
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import DRAM, NVM_PCM, STACKED_3D
from repro.sim.engine import SimulationEngine, build_custom_vm
from repro.sim.runner import build_config, run_experiment
from repro.units import GIB
from repro.workloads.extensions import make_lsm_store, make_tiered_analytics
from repro.workloads.registry import make_workload


def run_nvm_write_ablation() -> list[dict]:
    config = build_config(fast_ratio=0.1, slow_gib=4.0, slow_device=NVM_PCM)
    rows = []
    for policy in ("heap-od", "hetero-lru", "nvm-write-aware"):
        result = run_experiment(make_lsm_store(), policy, config=config)
        rows.append(
            {
                "policy": policy,
                "runtime_sec": result.runtime_sec,
                "write_promoted_pages": result.pages_migrated,
            }
        )
    return rows


def test_ablation_nvm_write_awareness(benchmark, show):
    rows = once(benchmark, run_nvm_write_ablation)
    show(rows, "Ablation A: write-aware placement on PCM (LSM store)")

    by_policy = {row["policy"]: row for row in rows}
    # Write-awareness promotes the write-hot log pages...
    assert by_policy["nvm-write-aware"]["write_promoted_pages"] > 0
    assert by_policy["hetero-lru"]["write_promoted_pages"] == 0
    # ...and never loses to read-hotness-only placement on PCM.
    assert (
        by_policy["nvm-write-aware"]["runtime_sec"]
        <= by_policy["hetero-lru"]["runtime_sec"] * 1.01
    )
    assert (
        by_policy["hetero-lru"]["runtime_sec"]
        <= by_policy["heap-od"]["runtime_sec"] * 1.01
    )


def _three_tier_devices():
    return {
        NodeTier.FAST: STACKED_3D.with_capacity(GIB // 2).with_name("fastmem"),
        NodeTier.MEDIUM: DRAM.with_capacity(2 * GIB).with_name("mediummem"),
        NodeTier.SLOW: NVM_PCM.with_capacity(8 * GIB).with_name("slowmem"),
    }


def run_multilevel_ablation() -> list[dict]:
    rows = []
    scenarios = {
        "3-tier multi-level": (_three_tier_devices(), "multi-level"),
        "3-tier hetero-lru": (_three_tier_devices(), "hetero-lru"),
        "2-tier (no medium) hetero-lru": (
            {
                NodeTier.FAST: STACKED_3D.with_capacity(GIB // 2).with_name(
                    "fastmem"
                ),
                NodeTier.SLOW: NVM_PCM.with_capacity(10 * GIB).with_name(
                    "slowmem"
                ),
            },
            "hetero-lru",
        ),
    }
    for label, (devices, policy) in scenarios.items():
        config = build_config(fast_ratio=0.25)
        hypervisor, domain, kernel = build_custom_vm(devices, config)
        engine = SimulationEngine(
            config, make_tiered_analytics(), make_policy(policy),
            hypervisor=hypervisor, domain=domain, kernel=kernel,
        )
        result = engine.run()
        rows.append(
            {
                "scenario": label,
                "runtime_sec": result.runtime_sec,
                "pages_demoted": result.pages_demoted,
            }
        )
    return rows


def test_ablation_multilevel_ladder(benchmark, show):
    rows = once(benchmark, run_multilevel_ablation)
    show(rows, "Ablation B: multi-level memory ladder (3-tier analytics)")

    by_label = {row["scenario"]: row for row in rows}
    ladder = by_label["3-tier multi-level"]["runtime_sec"]
    flat = by_label["3-tier hetero-lru"]["runtime_sec"]
    two_tier = by_label["2-tier (no medium) hetero-lru"]["runtime_sec"]
    # The page-type-aware ladder makes a medium tier pay off ...
    assert ladder <= flat * 1.02
    # ... and having the medium DRAM tier at all beats stacked+PCM only.
    assert ladder < two_tier


def run_native_ablation() -> list[dict]:
    rows = []
    for policy in ("hetero-lru", "hetero-coordinated", "hetero-native"):
        result = run_experiment(
            make_workload("graphchi"), policy, fast_ratio=0.125, epochs=200
        )
        rows.append(
            {
                "policy": policy,
                "runtime_sec": result.runtime_sec,
                "pages_migrated": result.pages_migrated,
            }
        )
    return rows


def test_ablation_native_mode(benchmark, show):
    rows = once(benchmark, run_native_ablation)
    show(rows, "Ablation C: bare-metal native tracking vs virtualized")

    by_policy = {row["policy"]: row for row in rows}
    native = by_policy["hetero-native"]["runtime_sec"]
    coordinated = by_policy["hetero-coordinated"]["runtime_sec"]
    lru = by_policy["hetero-lru"]["runtime_sec"]
    # The bare-metal port keeps the coordinated stack's benefits
    # (Section 4.3: "it can be easily applied to non-virtualized
    # systems").
    assert native <= lru * 1.05
    assert abs(native - coordinated) / coordinated < 0.15
