"""Wall-clock pin for the full static-analysis stack.

CI runs ``repro lint --deep --effects`` on every PR for two Python
versions, so its runtime is part of the development loop.  This bench
times a cold run (parse + index + all analyses) and a warm run (AST
cache hit) over the real package and archives both to
``benchmarks/_results/BENCH_lint.json`` so regressions show up as a
diff, not an anecdote.  The soft ceiling is generous — the point is
catching an accidental quadratic blow-up in the effect fixpoint, not
shaving milliseconds.
"""

from __future__ import annotations

import json
import pathlib
import time

import repro
from repro.devtools.flow import DEFAULT_BASELINE, Baseline, deep_lint_paths

PACKAGE_DIR = pathlib.Path(repro.__file__).parent
REPO_ROOT = PACKAGE_DIR.parent.parent
RESULTS_DIR = pathlib.Path(__file__).parent / "_results"

#: Cold full-stack run over ~100 files; seconds.  Current boxes do it
#: in well under half this.
COLD_CEILING_SEC = 60.0


def _timed_lint(cache_dir):
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    start = time.perf_counter()
    report, _index = deep_lint_paths(
        [PACKAGE_DIR],
        baseline=baseline,
        cache_dir=cache_dir,
        include_effects=True,
    )
    return report, time.perf_counter() - start


def test_bench_lint_deep_effects(tmp_path):
    cache_dir = tmp_path / "cache"
    cold_report, cold_sec = _timed_lint(cache_dir)
    warm_report, warm_sec = _timed_lint(cache_dir)

    assert cold_report.findings == [], cold_report.format_human()
    assert warm_report.findings == []
    assert cold_report.files_checked == warm_report.files_checked

    payload = {
        "benchmark": "repro lint --deep --effects src/repro",
        "files": cold_report.files_checked,
        "cold_sec": round(cold_sec, 3),
        "warm_sec": round(warm_sec, 3),
        "suppressed": len(cold_report.suppressed),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_lint.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\nlint --deep --effects: {payload['files']} files, "
        f"cold {cold_sec:.2f}s, warm {warm_sec:.2f}s"
    )
    assert cold_sec < COLD_CEILING_SEC, (
        f"cold lint --deep --effects took {cold_sec:.1f}s; "
        f"ceiling is {COLD_CEILING_SEC:.0f}s"
    )
