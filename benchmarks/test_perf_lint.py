"""Wall-clock pin for the full static-analysis stack.

CI runs ``repro lint --deep --effects --contracts`` on every PR for
two Python versions, so its runtime is part of the development loop.
This bench times a cold run (parse + index + all analyses), a warm run
(AST cache + persisted effect fixpoint hit), and the heterocontract
pass alone, and archives everything to
``benchmarks/_results/BENCH_lint.json`` so regressions show up as a
diff, not an anecdote.  The soft ceiling is generous — the point is
catching an accidental quadratic blow-up in the effect fixpoint, not
shaving milliseconds.

The warm run also pins the payload-v3 fixpoint persistence: with a
matching call-graph key the :class:`EffectAnalysis` is restored from
the cache, so the warm effect-stage time must beat the cold one.
"""

from __future__ import annotations

import json
import pathlib
import time

import repro
from repro.devtools.flow import DEFAULT_BASELINE, Baseline, deep_lint_paths

PACKAGE_DIR = pathlib.Path(repro.__file__).parent
REPO_ROOT = PACKAGE_DIR.parent.parent
RESULTS_DIR = pathlib.Path(__file__).parent / "_results"

#: Cold full-stack run over ~100 files; seconds.  Current boxes do it
#: in well under half this.
COLD_CEILING_SEC = 60.0


def _timed_lint(cache_dir, **passes):
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    start = time.perf_counter()
    report, _index = deep_lint_paths(
        [PACKAGE_DIR],
        baseline=baseline,
        cache_dir=cache_dir,
        **passes,
    )
    return report, time.perf_counter() - start


def _timed_effects_only(cache_dir):
    """Just index + effect analysis, isolating the fixpoint cost the
    persisted summaries are supposed to remove on warm runs."""
    from repro.devtools.effect import cached_effect_analysis
    from repro.devtools.flow import ProjectIndex, _parse_all

    start = time.perf_counter()
    _files, contexts = _parse_all([PACKAGE_DIR], cache_dir)
    index = ProjectIndex.build([PACKAGE_DIR], contexts=contexts)
    cached_effect_analysis(index, cache_dir)
    return time.perf_counter() - start


def test_bench_lint_deep_effects_contracts(tmp_path):
    cache_dir = tmp_path / "cache"
    cold_report, cold_sec = _timed_lint(
        cache_dir, include_effects=True, include_contracts=True
    )
    warm_report, warm_sec = _timed_lint(
        cache_dir, include_effects=True, include_contracts=True
    )
    contracts_report, contracts_sec = _timed_lint(
        cache_dir,
        include_shallow=False,
        include_deep=False,
        include_contracts=True,
    )

    assert cold_report.findings == [], cold_report.format_human()
    assert warm_report.findings == []
    assert contracts_report.findings == []
    assert cold_report.files_checked == warm_report.files_checked

    # Fixpoint persistence: a fresh cache pays the fixpoint, the second
    # run restores it by call-graph key.
    fixpoint_cache = tmp_path / "fixpoint-cache"
    effects_cold_sec = _timed_effects_only(fixpoint_cache)
    effects_warm_sec = _timed_effects_only(fixpoint_cache)
    assert effects_warm_sec < effects_cold_sec, (
        f"warm effect analysis ({effects_warm_sec:.2f}s) should beat "
        f"cold ({effects_cold_sec:.2f}s) via the persisted fixpoint"
    )

    payload = {
        "benchmark": "repro lint --deep --effects --contracts src/repro",
        "files": cold_report.files_checked,
        "cold_sec": round(cold_sec, 3),
        "warm_sec": round(warm_sec, 3),
        "contracts_sec": round(contracts_sec, 3),
        "effects_cold_sec": round(effects_cold_sec, 3),
        "effects_warm_sec": round(effects_warm_sec, 3),
        "suppressed": len(cold_report.suppressed),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_lint.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\nlint --deep --effects --contracts: {payload['files']} files, "
        f"cold {cold_sec:.2f}s, warm {warm_sec:.2f}s, "
        f"contracts-only {contracts_sec:.2f}s, effect fixpoint "
        f"{effects_cold_sec:.2f}s -> {effects_warm_sec:.2f}s warm"
    )
    assert cold_sec < COLD_CEILING_SEC, (
        f"cold lint --deep --effects --contracts took {cold_sec:.1f}s; "
        f"ceiling is {COLD_CEILING_SEC:.0f}s"
    )
