"""Performance pins for the parallel cached sweep harness.

Two acceptance criteria from the parallel-execution work ride here
rather than in tier-1 tests, because they time real multi-second
sweeps of the Figure 9 grid:

* a warm-cache re-sweep must be at least 5x faster than the cold
  sweep that populated the cache, and
* a 4-worker cold sweep must beat the serial cold sweep on
  multi-core runners (skipped on single-core boxes, where forked
  workers only add overhead).
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.experiments.placement import fig9_grid_specs
from repro.sim.parallel import ResultCache, results_or_raise, run_specs

#: Reduced from the figure benches' 120 so the cold grid stays in the
#: tens-of-seconds range; the cold/warm ratio is epoch-independent.
EPOCHS = 40

SPEEDUP_FLOOR = 5.0


def _timed_sweep(specs, **kwargs):
    start = time.perf_counter()
    outcomes = run_specs(specs, **kwargs)
    return results_or_raise(outcomes), time.perf_counter() - start


def test_perf_cached_resweep_beats_cold(tmp_path):
    specs = fig9_grid_specs(epochs=EPOCHS)

    cold_cache = ResultCache(tmp_path)
    cold_results, cold_sec = _timed_sweep(specs, cache=cold_cache)
    assert cold_cache.hits == 0 and cold_cache.misses == len(specs)

    warm_cache = ResultCache(tmp_path)
    warm_results, warm_sec = _timed_sweep(specs, cache=warm_cache)
    assert warm_cache.hits == len(specs) and warm_cache.misses == 0

    assert [dataclasses.asdict(r) for r in warm_results] == [
        dataclasses.asdict(r) for r in cold_results
    ], "cached results must be bit-identical to the runs that produced them"

    speedup = cold_sec / warm_sec
    print(
        f"\nFig. 9 grid ({len(specs)} specs, {EPOCHS} epochs): "
        f"cold {cold_sec:.2f}s, warm {warm_sec:.2f}s, {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-cache re-sweep only {speedup:.1f}x faster than cold "
        f"({cold_sec:.2f}s -> {warm_sec:.2f}s); floor is {SPEEDUP_FLOOR}x"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs a multi-core runner",
)
def test_perf_four_workers_beat_serial_cold(tmp_path):
    specs = fig9_grid_specs(epochs=EPOCHS)

    serial_results, serial_sec = _timed_sweep(specs)
    parallel_results, parallel_sec = _timed_sweep(specs, max_workers=4)

    assert [dataclasses.asdict(r) for r in parallel_results] == [
        dataclasses.asdict(r) for r in serial_results
    ], "worker processes must reproduce the serial results bit-for-bit"

    print(
        f"\nFig. 9 grid cold: serial {serial_sec:.2f}s, "
        f"4 workers {parallel_sec:.2f}s"
    )
    assert parallel_sec < serial_sec, (
        f"4-worker sweep ({parallel_sec:.2f}s) did not beat serial "
        f"({serial_sec:.2f}s)"
    )
