"""Figure 9: impact of guest-OS heterogeneity awareness."""

from conftest import once

from repro.experiments import run_fig9
from repro.experiments.placement import clear_cache

IO_INTENSIVE = ("xstream", "leveldb", "redis")
EPOCHS = 120


def test_fig9_placement(benchmark, show):
    clear_cache()
    rows = once(benchmark, run_fig9, epochs=EPOCHS)
    show(rows, "Figure 9: gains (%) over SlowMem-only")

    by_key = {(row["app"], row["ratio"]): row for row in rows}
    for (app, ratio), row in by_key.items():
        # The mechanism ladder is monotone (small tolerance for noise).
        assert row["heap-io-slab-od"] >= row["heap-od"] - 3, (app, ratio)
        assert row["hetero-lru"] >= row["heap-io-slab-od"] - 3, (app, ratio)
        # Nothing beats unlimited FastMem.
        assert row["hetero-lru"] <= row["fastmem-only"] + 5, (app, ratio)
        # Existing NUMA policies trail the full HeteroOS-LRU stack.
        assert row["numa-preferred"] <= row["hetero-lru"] + 3, (app, ratio)

    # Demand-based I/O+slab prioritization is what unlocks the
    # storage/network-intensive applications (Section 5.3).
    for app in IO_INTENSIVE:
        row = by_key[(app, "1/4")]
        assert row["heap-io-slab-od"] > row["heap-od"] + 30, app

    # Heap-only prioritization already helps the heap-churny GraphChi.
    assert by_key[("graphchi", "1/2")]["heap-od"] > 40
    # More FastMem never hurts HeteroOS-LRU.
    for app in ("graphchi", "metis"):
        assert (
            by_key[(app, "1/2")]["hetero-lru"]
            >= by_key[(app, "1/8")]["hetero-lru"] - 3
        ), app
