"""Figure 6: memlat average latency vs working-set size (0.5 GB FastMem)."""

from conftest import once

from repro.experiments import run_fig6


def test_fig6_memlat(benchmark, show):
    rows = once(benchmark, run_fig6)
    show(rows, "Figure 6: memlat latency (cycles) vs WSS", float_digits=0)

    by_wss = {row["wss_gib"]: row for row in rows}
    small, boundary, big = by_wss[0.25], by_wss[0.5], by_wss[2.0]

    for row in rows:
        # FastMem-only is the floor, SlowMem-only the ceiling.
        assert row["fastmem-only"] <= min(
            row[p] for p in ("random", "heap-od", "vmm-exclusive")
        ) * 1.02
        assert row["slowmem-only"] >= row["heap-od"]
        # Random sits between the extremes once placement matters.
        assert row["fastmem-only"] <= row["random"] <= row["slowmem-only"] * 1.02

    # On-demand allocation is ideal while the WSS fits FastMem ...
    assert small["heap-od"] <= small["fastmem-only"] * 1.1
    # ... and degrades gracefully beyond it.
    assert big["heap-od"] > boundary["heap-od"] * 1.5
    assert big["heap-od"] < big["slowmem-only"]
    # VMM-exclusive pays migration even for small working sets.
    assert small["vmm-exclusive"] > small["heap-od"] * 1.5
