"""Table 4: application memory intensity (MPKI)."""

from conftest import once

from repro.experiments import run_table4

#: The paper's measured MPKI values.
PAPER_MPKI = {
    "graphchi": 27.4,
    "xstream": 24.8,
    "metis": 14.9,
    "leveldb": 4.7,
    "redis": 11.1,
    "nginx": 2.1,
}


def test_table4_mpki(benchmark, show):
    rows = once(benchmark, run_table4)
    show(rows, "Table 4: application MPKI")

    measured = {row["app"]: row["mpki"] for row in rows}
    for app, paper_value in PAPER_MPKI.items():
        assert measured[app] == __import__("pytest").approx(
            paper_value, rel=0.15
        ), f"{app}: measured {measured[app]:.1f} vs paper {paper_value}"
    # Intensity ordering is preserved.
    ordering = sorted(measured, key=measured.get, reverse=True)
    assert ordering[:2] == ["graphchi", "xstream"]
    assert ordering[-1] == "nginx"
