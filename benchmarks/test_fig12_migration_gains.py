"""Figure 12: gains exclusively from page migrations."""

from conftest import once

from repro.experiments import run_fig12
from repro.experiments.coordinated import clear_cache

EPOCHS = 200


def test_fig12_migration_gains(benchmark, show):
    clear_cache()
    rows = once(benchmark, run_fig12, epochs=EPOCHS)
    show(rows, "Figure 12: migration-only gains vs Heap-IO-Slab-OD")

    by_app = {row["app"]: row for row in rows}
    for app, row in by_app.items():
        # VMM-exclusive's blind migrations *lose* to pure placement
        # (paper: -30% GraphChi, -20% Redis, -10% LevelDB).
        assert row["vmm-exclusive_gain_pct"] < 0, app
        # HeteroOS's guided migrations never lose to placement.
        assert row["hetero-lru_gain_pct"] >= -2, app
        assert row["hetero-coordinated_gain_pct"] >= -2, app
        # Coordinated >= LRU-only (it adds hotness-tracked promotion).
        assert (
            row["hetero-coordinated_gain_pct"]
            >= row["hetero-lru_gain_pct"] - 3
        ), app

    # GraphChi: coordinated moves more pages than LRU-only demotion and
    # converts them into gains (paper: 0.33M vs 0.10M pages).
    graphchi = by_app["graphchi"]
    assert (
        graphchi["hetero-coordinated_migrated_millions"]
        >= graphchi["hetero-lru_migrated_millions"]
    )
    assert graphchi["hetero-coordinated_gain_pct"] > 0
    # VMM-exclusive migrates the most pages for the least benefit.
    assert (
        graphchi["vmm-exclusive_migrated_millions"]
        > graphchi["hetero-lru_migrated_millions"]
    )
