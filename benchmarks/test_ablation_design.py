"""Ablations of HeteroOS's own design choices.

Each bench removes one mechanism the paper argues for and measures what
it was buying:

* the Equation 1 adaptive interval vs. fixed fast/slow intervals,
* the exception list (not tracking short-lived I/O) vs. tracking all,
* eager HeteroOS-LRU eviction vs. the stock lazy reclaim,
* weighted DRF vs. unweighted DRF (the FastMem weight of Section 4.2).
"""

from conftest import once

from repro.core.coordinated import CoordinatedPolicy
from repro.core.hetero_lru import HeteroLruPolicy
from repro.guestos.numa import NodeTier
from repro.mem.extent import PageType
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config, run_experiment
from repro.sim.multi_vm import MultiVmSimulation
from repro.experiments.sharing import fig13_devices, fig13_vmspecs
from repro.vmm.drf import WeightedDrf
from repro.workloads.registry import make_workload


# ----------------------------------------------------------------------
# A: Equation 1 adaptive interval
# ----------------------------------------------------------------------

def run_eq1_ablation() -> list[dict]:
    rows = []
    scenarios = {
        "adaptive (Eq. 1)": CoordinatedPolicy(initial_interval_ms=100.0),
        "fixed 50ms": CoordinatedPolicy(
            initial_interval_ms=50.0, min_interval_ms=50.0,
            max_interval_ms=50.0,
        ),
        "fixed 1000ms": CoordinatedPolicy(
            initial_interval_ms=1000.0, min_interval_ms=1000.0,
            max_interval_ms=1000.0,
        ),
    }
    for label, policy in scenarios.items():
        engine = SimulationEngine(
            build_config(fast_ratio=0.125), make_workload("graphchi"), policy
        )
        result = engine.run(200)
        rows.append(
            {
                "interval": label,
                "runtime_sec": result.runtime_sec,
                "scan_cost_sec": result.scan_cost_ns / 1e9,
                "pages_migrated": result.pages_migrated,
            }
        )
    return rows


def test_ablation_eq1_interval(benchmark, show):
    rows = once(benchmark, run_eq1_ablation)
    show(rows, "Ablation D: Equation 1 adaptive tracking interval")

    by_label = {row["interval"]: row for row in rows}
    adaptive = by_label["adaptive (Eq. 1)"]
    fast = by_label["fixed 50ms"]
    slow = by_label["fixed 1000ms"]
    # Always-fast scanning pays more scan cost than adaptive.
    assert adaptive["scan_cost_sec"] <= fast["scan_cost_sec"] * 1.05
    # Adaptive stays within a few percent of the better fixed setting.
    best_fixed = min(fast["runtime_sec"], slow["runtime_sec"])
    assert adaptive["runtime_sec"] <= best_fixed * 1.05


# ----------------------------------------------------------------------
# B: the exception list
# ----------------------------------------------------------------------

class TrackEverythingPolicy(CoordinatedPolicy):
    """Coordinated management *without* the Section 4.1 exception list:
    short-lived I/O regions are published for tracking too."""

    name = "hetero-coordinated-noexc"

    def _publish_tracking(self, channel) -> float:
        kernel = self.kernel
        tracked = [
            region_id
            for region_id in kernel.live_regions()
            for extent in kernel.region_extents(region_id)[:1]
            if extent.page_type
            in (PageType.HEAP, PageType.PAGE_CACHE, PageType.BUFFER_CACHE)
        ]
        channel.guest_publish_tracking(tracked, exception_types=set())
        return 0.0


def run_exception_list_ablation() -> list[dict]:
    rows = []
    for label, policy in (
        ("with exception list", CoordinatedPolicy()),
        ("tracking everything", TrackEverythingPolicy()),
    ):
        engine = SimulationEngine(
            build_config(fast_ratio=0.125), make_workload("xstream"), policy
        )
        result = engine.run(160)
        rows.append(
            {
                "variant": label,
                "runtime_sec": result.runtime_sec,
                "scan_cost_sec": result.scan_cost_ns / 1e9,
            }
        )
    return rows


def test_ablation_exception_list(benchmark, show):
    rows = once(benchmark, run_exception_list_ablation)
    show(rows, "Ablation E: tracking exception list (X-Stream)")

    by_label = {row["variant"]: row for row in rows}
    with_list = by_label["with exception list"]
    without = by_label["tracking everything"]
    # Tracking the page-cache churn costs scan budget for nothing:
    # excepting it is never worse and saves scan work.
    assert with_list["runtime_sec"] <= without["runtime_sec"] * 1.02
    assert with_list["scan_cost_sec"] <= without["scan_cost_sec"] * 1.02


# ----------------------------------------------------------------------
# C: eager vs lazy reclaim
# ----------------------------------------------------------------------

def run_eager_eviction_ablation() -> list[dict]:
    rows = []
    for label, policy in (
        ("eager (HeteroOS-LRU)", HeteroLruPolicy(fast_free_target=0.1)),
        ("lazy (no free target)", HeteroLruPolicy(fast_free_target=0.0)),
    ):
        engine = SimulationEngine(
            build_config(fast_ratio=0.125), make_workload("xstream"), policy
        )
        result = engine.run(160)
        rows.append(
            {
                "variant": label,
                "runtime_sec": result.runtime_sec,
                "fastmem_miss_ratio": result.fastmem_miss_ratio(),
            }
        )
    return rows


def test_ablation_eager_eviction(benchmark, show):
    rows = once(benchmark, run_eager_eviction_ablation)
    show(rows, "Ablation F: eager FastMem eviction (X-Stream @ 1/8)")

    by_label = {row["variant"]: row for row in rows}
    eager = by_label["eager (HeteroOS-LRU)"]
    lazy = by_label["lazy (no free target)"]
    # The eager free-target keeps allocation misses down and wins.
    assert eager["runtime_sec"] <= lazy["runtime_sec"] * 1.02
    assert eager["fastmem_miss_ratio"] <= lazy["fastmem_miss_ratio"] + 0.02


# ----------------------------------------------------------------------
# D: DRF weights
# ----------------------------------------------------------------------

def run_drf_weight_ablation() -> list[dict]:
    rows = []
    for label, weights in (
        ("weighted (fast x2)", None),  # Domain defaults: FAST=2, SLOW=1
        ("unweighted", {NodeTier.FAST: 1.0, NodeTier.SLOW: 1.0}),
    ):
        specs = fig13_vmspecs("hetero-coordinated")
        if weights is not None:
            for spec in specs:
                spec.weights.update(weights)
        sim = MultiVmSimulation(
            fig13_devices(), specs, sharing_policy=WeightedDrf()
        )
        results = sim.run(160)
        shares = sim.hypervisor.sharing_policy.dominant_shares(
            sim.hypervisor.machine,
            list(sim.hypervisor.domains.values()),
        )
        names = {d.domain_id: d.name for d in sim.hypervisor.domains.values()}
        rows.append(
            {
                "variant": label,
                "graphchi_runtime_sec": results["graphchi-vm"].runtime_sec,
                "metis_runtime_sec": results["metis-vm"].runtime_sec,
                "metis_dominant_share": shares[
                    next(i for i, n in names.items() if n == "metis-vm")
                ],
            }
        )
    return rows


def test_ablation_drf_weights(benchmark, show):
    rows = once(benchmark, run_drf_weight_ablation)
    show(rows, "Ablation G: DRF FastMem weighting (Figure 13 scenario)")

    by_label = {row["variant"]: row for row in rows}
    weighted = by_label["weighted (fast x2)"]
    unweighted = by_label["unweighted"]
    # The FastMem weight is what makes the FastMem-hungry Metis VM the
    # dominant consumer (Section 4.2's fix for "most VMs will always
    # have SlowMem as the dominant resource").
    assert (
        weighted["metis_dominant_share"]
        > unweighted["metis_dominant_share"]
    )
    # And the graphchi VM is no worse off under the weighted scheme.
    assert (
        weighted["graphchi_runtime_sec"]
        <= unweighted["graphchi_runtime_sec"] * 1.05
    )
