"""Figure 2: the sensitivity sweep on the Intel NVM emulator (48 MB LLC).

"The Intel emulator platform has a 3x larger LLC (48 MB) ... As a result,
the application slowdown factor is lower for the same workloads."
"""

from conftest import once

from repro.experiments import run_fig1, run_fig2


def test_fig2_nvm_emulator(benchmark, show):
    rows = once(benchmark, run_fig2, epochs=60)
    show(rows, "Figure 2: NVM-emulator (48MB LLC) sensitivity")

    small_llc = {
        row["app"]: row
        for row in run_fig1(epochs=60, include_remote_numa=False)
    }
    by_app = {row["app"]: row for row in rows}
    sweep = ["L:2,B:2", "L:5,B:5", "L:5,B:7", "L:5,B:9", "L:5,B:12"]
    for app, row in by_app.items():
        # Same qualitative trends as Figure 1 ...
        values = [row[c] for c in sweep]
        assert all(b >= a - 0.02 for a, b in zip(values, values[1:])), app
        # ... but the larger cache absorbs more traffic, so slowdowns are
        # never materially worse and are strictly lower for the apps with
        # cache-fittable hot sets.
        for config in sweep:
            assert row[config] <= small_llc[app][config] * 1.03, (app, config)
    assert by_app["leveldb"]["L:5,B:12"] < small_llc["leveldb"]["L:5,B:12"]
    assert by_app["redis"]["L:5,B:12"] < small_llc["redis"]["L:5,B:12"]
