"""Table 2: the datacenter applications and their performance metrics."""

from conftest import once

from repro.experiments import run_table2


def test_table2_apps(benchmark, show):
    rows = once(benchmark, run_table2)
    show(rows, "Table 2: datacenter applications")

    by_app = {row["app"]: row for row in rows}
    assert len(rows) == 6
    # Metric kinds match the paper's table.
    assert by_app["graphchi"]["perf_metric"].startswith("time")
    assert by_app["xstream"]["perf_metric"].startswith("time")
    assert by_app["metis"]["perf_metric"].startswith("time")
    assert "MB/s" in by_app["leveldb"]["perf_metric"]
    assert "requests" in by_app["redis"]["perf_metric"]
    assert "requests" in by_app["nginx"]["perf_metric"]
    for row in rows:
        assert row["measured"] > 0
    # Time-metric apps report seconds in a plausible band (not zero, not
    # hours): the simulated runs are tens of seconds.
    for app in ("graphchi", "xstream", "metis"):
        assert 1.0 < by_app[app]["measured"] < 300.0
