"""Figure 10: FastMem allocation miss ratio at the 1/8 capacity ratio."""

from conftest import once

from repro.experiments import run_fig10

EPOCHS = 120


def test_fig10_miss_ratio(benchmark, show):
    rows = once(benchmark, run_fig10, epochs=EPOCHS)
    show(rows, "Figure 10: FastMem allocation miss ratio at 1/8")

    by_app = {row["app"]: row for row in rows}
    for app, row in by_app.items():
        for policy in (
            "heap-od", "heap-io-slab-od", "hetero-lru", "numa-preferred"
        ):
            assert 0.0 <= row[policy] <= 1.0, (app, policy)
        # HeteroOS-LRU's eager eviction recycles FastMem, so far more
        # allocation requests are served from it.
        assert row["hetero-lru"] <= row["heap-io-slab-od"] + 0.02, app
        # The stock NUMA-preferred policy misses at least as often as any
        # HeteroOS mechanism.
        assert row["numa-preferred"] >= row["hetero-lru"] - 0.02, app

    # For the big-footprint apps, NUMA-preferred misses almost always
    # (paper: 0.72-1.00 across the suite).
    for app in ("graphchi", "xstream", "metis", "redis"):
        assert by_app[app]["numa-preferred"] > 0.6, app
        assert by_app[app]["hetero-lru"] < by_app[app]["numa-preferred"], app
