"""Figure 11: impact of guest-VMM coordinated management."""

from conftest import once

from repro.experiments import run_fig11
from repro.experiments.coordinated import clear_cache

EPOCHS = 200


def test_fig11_coordinated(benchmark, show):
    clear_cache()
    rows = once(benchmark, run_fig11, epochs=EPOCHS)
    show(rows, "Figure 11: gains (%) over SlowMem-only")

    by_key = {(row["app"], row["ratio"]): row for row in rows}
    for (app, ratio), row in by_key.items():
        # Coordination beats VMM-exclusive everywhere — the paper's
        # headline "up to 2x over the state-of-the-art" claim.
        assert row["hetero-coordinated"] > row["vmm-exclusive"], (app, ratio)
        # Coordination never costs more than a few points vs. guest-only
        # HeteroOS-LRU, and wins when capacity is scarce.
        assert (
            row["hetero-coordinated"] >= row["hetero-lru"] - 8
        ), (app, ratio)
        assert row["hetero-coordinated"] <= row["fastmem-only"] + 5

    # Where placement alone cannot track the drifting hot set (GraphChi
    # at 1/8), coordinated migration pulls ahead of HeteroOS-LRU.
    assert (
        by_key[("graphchi", "1/8")]["hetero-coordinated"]
        > by_key[("graphchi", "1/8")]["hetero-lru"] + 5
    )
    # LevelDB's working set fits FastMem: tracking adds little (paper:
    # "does not add much to the HeteroOS-LRU's gains").
    leveldb = by_key[("leveldb", "1/4")]
    assert abs(leveldb["hetero-coordinated"] - leveldb["hetero-lru"]) < 10
    # VMM-exclusive stays positive but far behind (>= 2x gap for the
    # memory-intensive apps).
    for app in ("graphchi", "xstream", "redis"):
        row = by_key[(app, "1/4")]
        assert row["vmm-exclusive"] > -5, app
        assert row["hetero-coordinated"] > 2 * max(row["vmm-exclusive"], 1), app
