"""Figure 3: FastMem capacity impact (L:5,B:9)."""

from conftest import once

from repro.experiments import run_fig3

RATIO_COLUMNS = ["1/2", "1/4", "1/8", "1/16", "1/32"]


def test_fig3_capacity(benchmark, show):
    rows = once(benchmark, run_fig3, epochs=60)
    show(rows, "Figure 3: slowdown vs FastMem:SlowMem capacity ratio")

    by_app = {row["app"]: row for row in rows}
    for app, row in by_app.items():
        values = [row[c] for c in RATIO_COLUMNS]
        # Less FastMem never helps.
        assert all(b >= a - 0.05 for a, b in zip(values, values[1:])), app

    # Observation 3: capacity-churny GraphChi stays under ~2-3x even at
    # 1/2-1/4 ratios; I/O apps barely notice until extreme ratios.
    assert by_app["graphchi"]["1/2"] < 3.0
    assert by_app["leveldb"]["1/16"] < 1.3
    assert by_app["nginx"]["1/32"] < 1.2
    # Working sets that outgrow FastMem keep degrading.
    assert by_app["graphchi"]["1/32"] > by_app["graphchi"]["1/2"]
    assert by_app["metis"]["1/32"] > by_app["metis"]["1/2"]
