"""Sweep-observability overhead budget: recording must stay near-free.

The ISSUE acceptance pin: a sweep driven with a full
:class:`~repro.obs.flight.SweepRecorder` attached (every hook firing,
metrics + spans accumulating) must cost < 2% wall-clock over the same
grid with no recorder. Wall-clock comparisons are noisy, so each
variant is timed best-of-N and the *minimum* (least-interference) times
are compared. The measured numbers are archived to
``benchmarks/_results/BENCH_sweepobs.json`` so regressions show up as a
committed-file diff, not just a red assert.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.obs.flight import SweepRecorder
from repro.sim import parallel
from repro.sim.parallel import make_spec, run_specs

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"

EPOCHS = 60
ROUNDS = 5

OVERHEAD_CEILING = 1.02


def _grid():
    return [
        make_spec(app, policy, epochs=EPOCHS)
        for app in ("nginx", "redis")
        for policy in ("slowmem-only", "hetero-lru", "hetero-coordinated")
    ]


def _time_sweep(recorder) -> float:
    parallel.clear_memo()  # every round simulates, none replays
    start = time.perf_counter()
    outcomes = run_specs(_grid(), recorder=recorder)
    elapsed = time.perf_counter() - start
    assert all(outcome.ok for outcome in outcomes)
    return elapsed


def test_perf_sweep_recorder_overhead_budget():
    _time_sweep(None)  # warm-up: import + allocator churn off the clock
    # Interleave the variants so process-lifetime drift (allocator,
    # caches warming over minutes) biases neither side.
    plain_times, recorded_times = [], []
    for _ in range(ROUNDS):
        plain_times.append(_time_sweep(None))
        recorded_times.append(_time_sweep(SweepRecorder()))
    plain = min(plain_times)
    recorded = min(recorded_times)
    ratio = recorded / plain
    payload = {
        "benchmark": "run_specs with SweepRecorder vs without",
        "grid_specs": len(_grid()),
        "epochs": EPOCHS,
        "rounds": ROUNDS,
        "plain_best_sec": round(plain, 4),
        "recorded_best_sec": round(recorded, 4),
        "overhead_ratio": round(ratio, 4),
        "ceiling": OVERHEAD_CEILING,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweepobs.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\nsweep recorder overhead: plain {plain:.3f}s, "
        f"recorded {recorded:.3f}s, {ratio:.4f}x "
        f"({len(_grid())} specs x {EPOCHS} epochs, best of {ROUNDS})"
    )
    assert ratio < OVERHEAD_CEILING, (
        f"flight recorder costs {ratio:.3f}x the bare sweep; "
        f"ceiling is {OVERHEAD_CEILING}x"
    )
