"""The experiment daemon: jobs, supervision, admission, equivalence.

The serving path's headline contract mirrors the rest of the harness:
infrastructure must never perturb results.  The tests here pin that
from every angle — wire round-trips, content-addressed job identity,
crash quarantine, bounded admission — and finish with the acceptance
check: a batch covering *every* registered policy served through the
daemon is field-by-field identical to ``run_specs`` run directly.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time

import pytest

from repro.core.policy import available_policies
from repro.errors import ServeError
from repro.serve import (
    ExperimentServer,
    Job,
    JobStore,
    ServeClient,
    ServeConfig,
    WorkerSupervisor,
    outcome_from_wire,
    outcome_to_wire,
)
from repro.serve.jobstore import job_id_for
from repro.sim import parallel
from repro.sim.parallel import (
    SpecFailure,
    SpecOutcome,
    make_spec,
    run_specs,
    spec_from_canonical,
)

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not _HAS_FORK, reason="platform lacks fork start method"
)


def tiny_spec(policy: str = "hetero-lru", app: str = "redis"):
    return make_spec(app, policy, epochs=2)


def result_dict(result) -> dict:
    return dataclasses.asdict(result)


@pytest.fixture
def server(tmp_path):
    """An in-process daemon on a loopback port, drained at teardown."""
    srv = ExperimentServer(ServeConfig(root=tmp_path, workers=2))
    srv.start()
    yield srv
    srv.drain()
    assert srv.wait(timeout_sec=30), "drain did not finish"


def client_for(server, **kwargs) -> ServeClient:
    kwargs.setdefault("backoff_sec", 0.01)
    return ServeClient(f"http://{server.address}", **kwargs)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


def test_wire_round_trips_ok_outcome():
    spec = tiny_spec()
    outcome = run_specs([spec])[0]
    entry = outcome_to_wire(outcome)
    assert entry["status"] == "ok"
    assert entry["summary"]["policy"] == "hetero-lru"
    back = outcome_from_wire(entry)
    assert back.spec == spec
    assert back.spec.cache_key("fp") == spec.cache_key("fp")
    assert result_dict(back.result) == result_dict(outcome.result)


def test_wire_round_trips_failure():
    spec = tiny_spec()
    outcome = SpecOutcome(
        spec=spec,
        error=SpecFailure(
            kind="error", message="MigrationError: injected",
            error_type="MigrationError",
        ),
        source="parallel",
        elapsed_sec=1.5,
    )
    back = outcome_from_wire(outcome_to_wire(outcome))
    assert back.error == outcome.error
    assert back.elapsed_sec == 1.5


def test_wire_rejects_tampered_payloads():
    entry = outcome_to_wire(run_specs([tiny_spec()])[0])
    with pytest.raises(ServeError, match="version"):
        outcome_from_wire(dict(entry, v=99))
    with pytest.raises(ServeError, match="decode"):
        outcome_from_wire(dict(entry, result_b64="not base64!"))
    with pytest.raises(ServeError):
        outcome_from_wire("not a mapping")


def test_spec_round_trips_through_canonical_form():
    plan = {"seed": 5, "faults": [{"kind": "channel-drop",
                                   "probability": 0.25}]}
    spec = make_spec(
        "nginx", "multi-level", fast_ratio=0.5, epochs=3, seed=11,
        faults=plan,
    )
    back = spec_from_canonical(spec.canonical())
    assert back == spec
    assert back.cache_key("fp") == spec.cache_key("fp")


# ----------------------------------------------------------------------
# Job store: identity, idempotency, recovery
# ----------------------------------------------------------------------


def test_job_ids_are_content_addressed():
    specs = [tiny_spec()]
    assert job_id_for("a", specs, "fp") == job_id_for("a", specs, "fp")
    assert job_id_for("a", specs, "fp") != job_id_for("b", specs, "fp")
    assert job_id_for("a", specs, "fp") != job_id_for("a", specs, "fp2")
    assert job_id_for("a", specs, "fp") != job_id_for(
        "a", [tiny_spec("hetero-coordinated")], "fp"
    )


def test_submit_is_idempotent(tmp_path):
    store = JobStore(tmp_path)
    specs = [tiny_spec()]
    job, created = store.submit("alice", specs)
    again, created_again = store.submit("alice", specs)
    assert created and not created_again
    assert again is job
    # Only the first submission journaled anything.
    lines = (tmp_path / "serve-jobs.jsonl").read_text().splitlines()
    assert len(lines) == 1


def test_recover_requeues_unfinished_jobs(tmp_path):
    store = JobStore(tmp_path)
    done_job, _ = store.submit("alice", [tiny_spec()])
    store.transition(done_job, "running")
    store.transition(done_job, "done")
    killed_job, _ = store.submit(
        "alice", [tiny_spec("hetero-coordinated")]
    )
    store.transition(killed_job, "running")  # killed mid-flight

    fresh = JobStore(tmp_path)
    requeued = fresh.recover()
    assert [job.job_id for job in requeued] == [killed_job.job_id]
    assert fresh.jobs[done_job.job_id].state == "done"
    recovered = fresh.jobs[killed_job.job_id]
    assert recovered.state == "queued" and recovered.recovered
    assert recovered.specs == killed_job.specs


def test_recover_skips_corrupt_lines_and_foreign_versions(tmp_path):
    store = JobStore(tmp_path)
    job, _ = store.submit("alice", [tiny_spec()])
    with open(store.jobs_path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "event": "subm')  # torn write
        handle.write("\n")
        handle.write('{"v": 99, "event": "state", "job": "x"}\n')
    fresh = JobStore(tmp_path)
    fresh.recover()
    assert list(fresh.jobs) == [job.job_id]
    assert fresh.corrupt_lines_skipped == 1


def test_recover_drops_jobs_from_other_source_trees(tmp_path):
    store = JobStore(tmp_path)
    job, _ = store.submit("alice", [tiny_spec()])
    fresh = JobStore(tmp_path)
    fresh.fingerprint = "different-source-tree"
    fresh.recover()
    # The journaled id no longer matches the content hash: stale work
    # is dropped exactly like cache-key invalidation.
    assert job.job_id not in fresh.jobs


def test_client_ids_are_validated(tmp_path):
    store = JobStore(tmp_path)
    with pytest.raises(ServeError, match="client"):
        store.validate_client("bad client id!")
    with pytest.raises(ServeError, match="client"):
        store.validate_client("x" * 65)
    assert store.validate_client("ci-runner_7.a") == "ci-runner_7.a"


def test_parse_specs_rejects_malformed_batches(tmp_path):
    store = JobStore(tmp_path)
    with pytest.raises(ServeError, match="array"):
        store.parse_specs({"app": "redis"})
    with pytest.raises(ServeError, match="empty"):
        store.parse_specs([])
    with pytest.raises(ServeError, match="bad spec"):
        store.parse_specs([{"app": 42}])


def test_ordered_outcomes_requires_completion():
    job = Job(job_id="j", client="c", specs=(tiny_spec(),))
    with pytest.raises(ServeError, match="not complete"):
        job.ordered_outcomes()


# ----------------------------------------------------------------------
# Worker supervision: crashes, respawn, quarantine
# ----------------------------------------------------------------------


@needs_fork
def test_supervisor_runs_specs_in_workers():
    supervisor = WorkerSupervisor(max_workers=2)
    supervisor.start()
    try:
        spec = tiny_spec()
        supervisor.submit("task-1", spec)
        events = []
        deadline = 120
        while not events and deadline > 0:
            events = supervisor.poll(0.25)
            deadline -= 1
        assert events and events[0][0] == "task-1"
        outcome = events[0][1]
        assert outcome.ok
        direct = run_specs([spec])[0]
        assert result_dict(outcome.result) == result_dict(direct.result)
    finally:
        supervisor.stop()


@needs_fork
def test_supervisor_respawns_crashed_workers_then_quarantines(monkeypatch):
    # The monkeypatched module state is inherited by forked workers, so
    # every execution of this spec kills its worker process.
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: os._exit(43),
    )
    supervisor = WorkerSupervisor(max_workers=1, max_crashes=2)
    supervisor.start()
    try:
        supervisor.submit("poison", tiny_spec())
        events = []
        deadline = 240
        while not events and deadline > 0:
            events = supervisor.poll(0.25)
            deadline -= 1
        assert events, "quarantine outcome never surfaced"
        task_id, outcome = events[0]
        assert task_id == "poison"
        assert outcome.error is not None
        assert outcome.error.kind == "worker-crash"
        assert "quarantined" in outcome.error.message
        assert supervisor.quarantined == {"poison": 2}
        # One respawn per crash: the pool healed itself both times.
        assert supervisor.respawns == 2
        assert supervisor.outstanding == 0
    finally:
        supervisor.stop()


def test_supervisor_validates_configuration():
    with pytest.raises(ServeError):
        WorkerSupervisor(max_workers=0)
    with pytest.raises(ServeError):
        WorkerSupervisor(max_crashes=0)
    supervisor = WorkerSupervisor()
    with pytest.raises(ServeError, match="not running"):
        supervisor.submit("t", tiny_spec())


# ----------------------------------------------------------------------
# Admission control (no scheduler needed: jobs just queue)
# ----------------------------------------------------------------------


def make_unstarted_server(tmp_path, **overrides) -> ExperimentServer:
    config = ServeConfig(root=tmp_path, **overrides)
    return ExperimentServer(config)


def canonical_batch(*specs):
    return [spec.canonical() for spec in specs]


def test_queue_limit_rejects_with_retry_after(tmp_path):
    server = make_unstarted_server(tmp_path, queue_limit=2, client_limit=9)
    server.submit_job("alice", canonical_batch(tiny_spec()))
    server.submit_job(
        "alice", canonical_batch(tiny_spec("hetero-coordinated"))
    )
    with pytest.raises(ServeError) as excinfo:
        server.submit_job("bob", canonical_batch(tiny_spec("random")))
    rejection = excinfo.value
    assert rejection.code == 429
    assert rejection.retry_after_sec >= 1
    counts = server.recorder.registry.get("serve_admissions_total")
    assert counts.value(result="rejected-queue-full") == 1
    assert counts.value(result="accepted") == 2


def test_duplicate_submission_bypasses_full_queue(tmp_path):
    server = make_unstarted_server(tmp_path, queue_limit=1)
    batch = canonical_batch(tiny_spec())
    job, disposition = server.submit_job("alice", batch)
    assert disposition == "created"
    # Queue is now full, but resubmitting the same work must succeed:
    # idempotent retries cannot be starved by the limit they created.
    again, disposition = server.submit_job("alice", batch)
    assert disposition == "duplicate"
    assert again.job_id == job.job_id


def test_per_client_limit_is_isolated_per_client(tmp_path):
    server = make_unstarted_server(tmp_path, queue_limit=9, client_limit=1)
    server.submit_job("alice", canonical_batch(tiny_spec()))
    with pytest.raises(ServeError) as excinfo:
        server.submit_job(
            "alice", canonical_batch(tiny_spec("hetero-coordinated"))
        )
    assert excinfo.value.code == 429
    # A different client is unaffected by alice's backlog.
    job, disposition = server.submit_job(
        "bob", canonical_batch(tiny_spec("hetero-coordinated"))
    )
    assert disposition == "created" and job.client == "bob"


def test_draining_server_rejects_with_503(tmp_path):
    server = make_unstarted_server(tmp_path)
    server.drain()
    with pytest.raises(ServeError) as excinfo:
        server.submit_job("alice", canonical_batch(tiny_spec()))
    assert excinfo.value.code == 503


def test_bad_batches_rejected_before_any_journaling(tmp_path):
    server = make_unstarted_server(tmp_path)
    with pytest.raises(ServeError):
        server.submit_job("bad client!", canonical_batch(tiny_spec()))
    with pytest.raises(ServeError):
        server.submit_job("alice", "not-a-batch")
    assert not (tmp_path / "serve-jobs.jsonl").exists()


# ----------------------------------------------------------------------
# End-to-end over HTTP: the no-perturbation acceptance check
# ----------------------------------------------------------------------


@needs_fork
def test_served_results_identical_to_run_specs_all_policies(server):
    specs = [
        make_spec("redis", policy, epochs=2)
        for policy in available_policies()
    ]
    client = client_for(server, client_id="equivalence")
    served = client.run(specs, timeout_sec=600)
    direct = run_specs(specs)
    assert len(served) == len(specs)
    for got, want in zip(served, direct):
        assert got.ok and want.ok
        assert result_dict(got.result) == result_dict(want.result), (
            got.spec.label
        )
    # Serve config never entered the cache keys: the daemon's cache now
    # hits for a spec keyed exactly as run_specs would key it.
    fingerprint = server.store.fingerprint
    for spec in specs:
        assert (
            server.store.cache.lookup(spec, fingerprint) is not None
        ), spec.label


@needs_fork
def test_second_submission_served_from_cache(server):
    specs = [tiny_spec()]
    client = client_for(server, client_id="cacher")
    first = client.run(specs, timeout_sec=120)
    assert first[0].source in ("parallel", "serial")
    # Different client -> different job id -> same cache entry.
    other = client_for(server, client_id="cacher2")
    second = other.run(specs, timeout_sec=120)
    assert second[0].source == "cache"
    assert result_dict(first[0].result) == result_dict(second[0].result)


@needs_fork
def test_duplicate_specs_in_one_batch_share_one_execution(server):
    spec = tiny_spec("nvm-write-aware")
    client = client_for(server, client_id="dupes")
    served = client.run([spec, spec], timeout_sec=120)
    assert result_dict(served[0].result) == result_dict(served[1].result)


@needs_fork
def test_healthz_and_metrics_endpoints(server):
    client = client_for(server, client_id="probe")
    health = client.healthz()
    assert health["status"] == "ok" and health["ready"]
    assert health["worker_mode"] in ("forked", "serial")
    assert health["queue_limit"] == 16
    client.run([tiny_spec()], timeout_sec=120)
    text = client.metrics_text()
    # PR 9 sweep series and the serve-side series share one registry.
    for needle in (
        "sweep_specs_total",
        "serve_admissions_total",
        "serve_queue_depth",
        "serve_jobs_total",
        "serve_worker_respawns_total",
        "serve_up 1",
    ):
        assert needle in text, needle


@needs_fork
def test_http_surfaces_structured_errors(server):
    client = client_for(server, client_id="errors")
    status, _, body = client._request("GET", "/jobs/no-such-job")
    assert status == 404
    status, _, body = client._request("POST", "/jobs", {"client": "x y"})
    assert status == 400
    status, _, body = client._request("GET", "/nope")
    assert status == 404
    with pytest.raises(ServeError, match="unknown"):
        client.status("no-such-job")


@needs_fork
def test_jobs_index_lists_jobs(server):
    client = client_for(server, client_id="lister")
    job_id = client.submit([tiny_spec()])
    client.wait(job_id, timeout_sec=120)
    index = client._request("GET", "/jobs")[2]
    assert job_id.encode("ascii") in index


@needs_fork
def test_journaled_deterministic_failure_reused_by_daemon(tmp_path):
    # A deterministic failure journaled by a *CLI sweep* is reused by
    # the daemon without re-running (shared substrate, shared policy).
    spec = tiny_spec()
    failed = SpecOutcome(
        spec=spec,
        error=SpecFailure(
            kind="error", message="MigrationError: injected",
            error_type="MigrationError",
        ),
        source="parallel",
    )
    store = JobStore(tmp_path)
    store.journal.record(spec, store.fingerprint, failed)

    server = ExperimentServer(ServeConfig(root=tmp_path, workers=1))
    server.start()
    try:
        client = client_for(server, client_id="reuser")
        outcomes = client.run([spec], timeout_sec=60)
        assert outcomes[0].error is not None
        assert outcomes[0].error.kind == "error"
        assert outcomes[0].source == "journal"
    finally:
        server.drain()
        assert server.wait(timeout_sec=30)


@needs_fork
def test_recovered_jobs_run_after_restart(tmp_path):
    # Accepted-but-never-run work survives a daemon death: a second
    # daemon on the same root picks the journaled job up and runs it.
    store = JobStore(tmp_path)
    job, _ = store.submit("alice", [tiny_spec()])

    server = ExperimentServer(ServeConfig(root=tmp_path, workers=1))
    server.start()
    try:
        client = client_for(server, client_id="alice")
        payload = client.wait(job.job_id, timeout_sec=120)
        assert payload["state"] == "done"
        assert payload["recovered"]
        outcomes = client.outcomes(payload)
        direct = run_specs([tiny_spec()])
        assert result_dict(outcomes[0].result) == result_dict(
            direct[0].result
        )
    finally:
        server.drain()
        assert server.wait(timeout_sec=30)


@needs_fork
def test_client_backs_off_on_429_and_gives_up(tmp_path):
    server = make_unstarted_server(tmp_path, queue_limit=1)
    server.submit_job("filler", canonical_batch(tiny_spec()))
    httpd = None
    try:
        from repro.serve.server import _make_httpd
        import threading

        httpd = _make_httpd(server)
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        host, port = httpd.server_address[0], httpd.server_address[1]
        client = ServeClient(
            f"http://{host}:{port}", client_id="late",
            max_attempts=3, backoff_sec=0.01, timeout_sec=5.0,
        )
        started = time.monotonic()
        with pytest.raises(ServeError, match="gave up"):
            client.submit([tiny_spec("hetero-coordinated")])
        assert time.monotonic() - started >= 0.02  # it really backed off
    finally:
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()


def test_client_rejects_bad_addresses():
    with pytest.raises(ServeError, match="address"):
        ServeClient("ftp://nope")
    with pytest.raises(ServeError, match="address"):
        ServeClient("http://host:notaport")
    with pytest.raises(ServeError):
        ServeClient("http://x:1", max_attempts=0)


def test_client_jitter_is_deterministic():
    from repro.serve.client import _jitter_fraction

    assert _jitter_fraction("tok", 1) == _jitter_fraction("tok", 1)
    assert 0.0 <= _jitter_fraction("tok", 1) < 1.0
    assert _jitter_fraction("tok", 1) != _jitter_fraction("tok", 2)
    assert _jitter_fraction("tok", 1) != _jitter_fraction("kot", 1)


@needs_fork
def test_unix_socket_transport(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    server = ExperimentServer(
        ServeConfig(root=tmp_path / "root", unix_socket=socket_path,
                    workers=1)
    )
    server.start()
    try:
        client = ServeClient(f"unix:{socket_path}", client_id="unixer")
        outcomes = client.run([tiny_spec()], timeout_sec=120)
        assert outcomes[0].ok
        assert client.healthz()["status"] == "ok"
    finally:
        server.drain()
        assert server.wait(timeout_sec=30)
