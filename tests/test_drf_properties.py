"""Property-based tests of the sharing policies' arbitration maths."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guestos.balloon import TierReservation
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.vmm.domain import Domain
from repro.vmm.drf import WeightedDrf
from repro.vmm.machine import MachineMemory
from repro.vmm.sharing import MaxMinSharing

TIERS = (NodeTier.FAST, NodeTier.SLOW)


def build_world(fast_total, slow_total, holdings):
    """Machine + domains with given (fast, slow) minimums==holdings."""
    machine = MachineMemory(
        {
            NodeTier.FAST: DRAM.with_capacity(fast_total * 4096),
            NodeTier.SLOW: NVM_PCM.with_capacity(slow_total * 4096),
        }
    )
    domains = []
    for index, (fast_min, fast_extra, slow_min, slow_extra) in enumerate(
        holdings
    ):
        domain = Domain(
            domain_id=index + 1,
            name=f"vm{index}",
            reservations={
                NodeTier.FAST: TierReservation(fast_min, fast_total),
                NodeTier.SLOW: TierReservation(slow_min, slow_total),
            },
        )
        for tier, minimum, extra in (
            (NodeTier.FAST, fast_min, fast_extra),
            (NodeTier.SLOW, slow_min, slow_extra),
        ):
            want = min(minimum + extra, machine.free_pages(tier))
            if want > 0:
                domain.record_grant(tier, machine.allocate(tier, want))
        domains.append(domain)
    return machine, domains


holdings_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),   # fast min
        st.integers(min_value=0, max_value=200),   # fast overcommit
        st.integers(min_value=0, max_value=500),   # slow min
        st.integers(min_value=0, max_value=500),   # slow overcommit
    ),
    min_size=2,
    max_size=4,
)


@settings(max_examples=60, deadline=None)
@given(
    holdings=holdings_strategy,
    request_pages=st.integers(min_value=1, max_value=2000),
    tier=st.sampled_from(TIERS),
)
def test_drf_decision_bounds(holdings, request_pages, tier):
    machine, domains = build_world(2000, 5000, holdings)
    requester = domains[0]
    decision = WeightedDrf().arbitrate(
        requester, tier, request_pages, machine, domains
    )
    # Never grant more than asked.
    assert 0 <= decision.total_pages <= request_pages
    # Pool grants never exceed the pool.
    assert decision.granted_from_pool <= machine.free_pages(tier)
    for reclaim in decision.reclaims:
        # Victims are other domains, and only their overcommit is taken.
        assert reclaim.victim is not requester
        assert reclaim.pages <= reclaim.victim.overcommit_pages(tier)
        assert reclaim.tier is tier


@settings(max_examples=60, deadline=None)
@given(
    holdings=holdings_strategy,
    request_pages=st.integers(min_value=1, max_value=2000),
    tier=st.sampled_from(TIERS),
)
def test_maxmin_decision_bounds(holdings, request_pages, tier):
    machine, domains = build_world(2000, 5000, holdings)
    requester = domains[-1]
    decision = MaxMinSharing().arbitrate(
        requester, tier, request_pages, machine, domains
    )
    assert 0 <= decision.total_pages <= request_pages
    assert decision.granted_from_pool <= machine.free_pages(tier)
    for reclaim in decision.reclaims:
        assert reclaim.victim is not requester
        # Even max-min never digs below a quarter of the victim's
        # reserved minimum.
        floor = reclaim.victim.reservations[tier].min_pages // 4
        assert reclaim.victim.pages(tier) - reclaim.pages >= floor


@settings(max_examples=60, deadline=None)
@given(holdings=holdings_strategy)
def test_drf_shares_are_non_negative_and_monotone_in_holdings(holdings):
    machine, domains = build_world(2000, 5000, holdings)
    drf = WeightedDrf()
    shares = drf.dominant_shares(machine, domains)
    assert all(share >= 0 for share in shares.values())
    # Granting more to one domain never lowers its dominant share.
    target = domains[0]
    before = shares[target.domain_id]
    grantable = min(50, machine.free_pages(NodeTier.SLOW))
    if grantable > 0:
        target.record_grant(
            NodeTier.SLOW, machine.allocate(NodeTier.SLOW, grantable)
        )
        after = drf.dominant_shares(machine, domains)[target.domain_id]
        assert after >= before - 1e-12
