"""Simulation engine, config, stats, and runner."""

import pytest

from repro.config import SimConfig
from repro.core import make_policy
from repro.errors import ConfigurationError
from repro.hw.throttle import ThrottleConfig
from repro.mem.extent import PageType
from repro.sim.engine import SimulationEngine, build_single_vm
from repro.sim.runner import build_config, run_experiment
from repro.sim.stats import RunResult, RunStats, gain_percent, slowdown_factor
from repro.units import GIB, MIB
from repro.workloads.base import RegionSpec, StatisticalWorkload


def tiny_workload(**overrides) -> StatisticalWorkload:
    kwargs = dict(
        name="tiny",
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=10_000.0,
        io_wait_ns=1000.0,
        resident=[
            RegionSpec("hot", PageType.HEAP, 2048, reuse=0.7, access_share=1.0),
        ],
    )
    kwargs.update(overrides)
    return StatisticalWorkload(**kwargs)


def tiny_config(**overrides) -> SimConfig:
    kwargs = dict(
        fast_capacity_bytes=16 * MIB,
        slow_capacity_bytes=64 * MIB,
    )
    kwargs.update(overrides)
    return SimConfig(**kwargs)


# ----------------------------------------------------------------------
# SimConfig
# ----------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ConfigurationError):
        SimConfig(slow_capacity_bytes=0)
    with pytest.raises(ConfigurationError):
        SimConfig(fast_capacity_bytes=-1)
    with pytest.raises(ConfigurationError):
        SimConfig(epoch_ms=0)


def test_config_derives_slow_device_from_throttle():
    config = tiny_config(slow_throttle=ThrottleConfig(5, 12))
    device = config.resolved_slow_device()
    assert device.load_latency_ns == 960.0
    assert device.capacity_bytes == 64 * MIB


def test_config_explicit_slow_device_wins():
    from repro.hw.memdevice import NVM_PCM

    config = tiny_config(slow_device=NVM_PCM)
    assert config.resolved_slow_device().load_latency_ns == 150.0


# ----------------------------------------------------------------------
# build_single_vm
# ----------------------------------------------------------------------

def test_single_vm_has_two_tiers():
    hypervisor, domain, kernel = build_single_vm(tiny_config())
    assert len(kernel.nodes) == 2
    assert kernel.fast_node_ids and kernel.slow_node_ids
    assert hypervisor.kernel(domain.domain_id) is kernel


def test_single_vm_without_fast_tier():
    hypervisor, domain, kernel = build_single_vm(
        tiny_config(fast_capacity_bytes=0)
    )
    assert kernel.fast_node_ids == []


# ----------------------------------------------------------------------
# Engine runs
# ----------------------------------------------------------------------

def test_engine_run_accumulates_time_and_stats():
    engine = SimulationEngine(
        tiny_config(), tiny_workload(), make_policy("heap-od")
    )
    result = engine.run(10)
    assert result.stats.epochs == 10
    assert result.stats.runtime_ns > 0
    assert result.stats.cpu_ns > 0
    assert result.stats.io_wait_ns == pytest.approx(10 * 1000.0)
    assert result.stats.instructions == pytest.approx(1e7)
    assert result.stats.llc_misses > 0
    assert result.workload_name == "tiny"
    assert result.policy_name == "heap-od"


def test_engine_is_deterministic():
    results = [
        SimulationEngine(
            tiny_config(), tiny_workload(), make_policy("random")
        ).run(10).stats.runtime_ns
        for _ in range(2)
    ]
    assert results[0] == results[1]


def test_engine_seed_changes_random_policy():
    def fast_pages(seed):
        engine = SimulationEngine(
            tiny_config(seed=seed),
            tiny_workload(
                resident=[
                    RegionSpec(f"r{i}", PageType.HEAP, 128, 0.7, 1.0)
                    for i in range(24)
                ]
            ),
            make_policy("random"),
        )
        engine.run(3)
        return engine.kernel.cumulative_stats[
            PageType.HEAP
        ].fast_granted_pages

    placements = {fast_pages(seed) for seed in (1, 7, 23, 99, 1234)}
    assert len(placements) > 1  # different seeds place differently


def test_engine_records_llc_misses_on_channel():
    engine = SimulationEngine(
        tiny_config(), tiny_workload(), make_policy("heap-od")
    )
    engine.run(5)
    channel = engine.hypervisor.channel(engine.domain.domain_id)
    assert len(channel.counters.llc_miss_history) == 5


def test_engine_charges_policy_overhead():
    config = tiny_config(fast_capacity_bytes=4 * MIB)
    workload = tiny_workload(
        resident=[
            RegionSpec("hot", PageType.HEAP, 8192, reuse=0.7, access_share=1.0),
        ],
    )
    engine = SimulationEngine(config, workload, make_policy("vmm-exclusive"))
    result = engine.run(10)
    assert result.stats.policy_overhead_ns > 0


def test_engine_survives_genuine_overcommit():
    """A workload larger than the whole guest swaps rather than crashing."""
    config = tiny_config(fast_capacity_bytes=4 * MIB, slow_capacity_bytes=16 * MIB)
    workload = tiny_workload(
        resident=[
            RegionSpec("huge", PageType.HEAP, 8192, 0.7, 1.0),
            RegionSpec("huge2", PageType.HEAP, 4096, 0.7, 1.0, alloc_epoch=2),
        ],
    )
    engine = SimulationEngine(config, workload, make_policy("heap-od"))
    result = engine.run(5)
    assert result.swap_pages_out > 0 or result.stats.dropped_allocation_pages >= 0


# ----------------------------------------------------------------------
# Stats / metrics
# ----------------------------------------------------------------------

def test_gain_and_slowdown_helpers():
    def result_with_runtime(ns):
        stats = RunStats(runtime_ns=ns, epochs=10)
        return RunResult("w", "p", "seconds", 0.0, stats)

    fast = result_with_runtime(1e9)
    slow = result_with_runtime(2e9)
    assert gain_percent(fast, slow) == pytest.approx(100.0)
    assert gain_percent(slow, fast) == pytest.approx(-50.0)
    assert slowdown_factor(slow, fast) == pytest.approx(2.0)


def test_metric_value_throughput():
    stats = RunStats(runtime_ns=2e9, epochs=10)
    ops = RunResult("w", "p", "ops-per-sec", 1000.0, stats)
    assert ops.metric_value == pytest.approx(10_000 / 2.0)
    secs = RunResult("w", "p", "seconds", 0.0, stats)
    assert secs.metric_value == pytest.approx(2.0)


def test_fastmem_miss_ratio_filters_types():
    from repro.guestos.kernel import AllocStats

    stats = RunStats(runtime_ns=1.0, epochs=1)
    result = RunResult(
        "w", "p", "seconds", 0.0, stats,
        alloc_stats={
            PageType.HEAP: AllocStats(100, 80),
            PageType.PAGE_CACHE: AllocStats(100, 0),
        },
    )
    assert result.fastmem_miss_ratio() == pytest.approx(0.6)
    assert result.fastmem_miss_ratio((PageType.HEAP,)) == pytest.approx(0.2)
    assert result.fastmem_miss_ratio((PageType.SLAB,)) == 0.0


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def test_build_config_ratio_math():
    config = build_config(fast_ratio=0.25, slow_gib=8.0)
    assert config.fast_capacity_bytes == 2 * GIB
    assert config.slow_capacity_bytes == 8 * GIB
    unlimited = build_config(unlimited_fast=True, slow_gib=8.0)
    assert unlimited.fast_capacity_bytes == 16 * GIB
    with pytest.raises(ConfigurationError):
        build_config(fast_ratio=-0.1)


def test_run_experiment_accepts_names_and_instances():
    by_name = run_experiment("nginx", "slowmem-only", epochs=3)
    assert by_name.stats.epochs == 3
    by_instance = run_experiment(
        tiny_workload(), make_policy("slowmem-only"), epochs=3,
        config=tiny_config(),
    )
    assert by_instance.workload_name == "tiny"


def test_run_experiment_unlimited_fast_for_fastmem_only():
    result = run_experiment("nginx", "fastmem-only", epochs=3)
    assert result.fastmem_miss_ratio() == 0.0
