"""Sweep flight recorder: no-perturbation pin + telemetry correctness.

The hard contract mirrors PR 4's telemetry rule, one layer up: the
recorder observes the *harness*, never steers it.

1. **Recorder-on == recorder-off** — ``run_specs`` with a
   :class:`SweepRecorder` attached returns field-by-field identical
   results to the same grid without one, for every registered policy,
   across serial, parallel, and cached execution.
2. **Metrics never enter cache keys** — a recorder-on sweep's cache
   entries are served verbatim to a recorder-off sweep (and vice
   versa), and the recorder is not a ``run_spec`` parameter at all.
3. **The numbers are right** — cache hit/miss, dedup, retries, journal
   reuse, corrupt-line skips, and fault roll-ups land in the metrics
   the live view and ``repro report`` read.
4. **Traces compose** — the sweep-lane Chrome trace merges with PR 4's
   per-run traces into one valid Perfetto-loadable file.
"""

from __future__ import annotations

import dataclasses
import inspect
import json

import pytest

from repro.core.policy import available_policies
from repro.faults import FaultPlan, FaultSpec, merge_fault_counts
from repro.obs import ChromeTraceSink, Telemetry
from repro.obs.flight import (
    SWEEP_PID,
    SweepRecorder,
    format_live_status,
    merge_traces,
    reconstruct_report,
)
from repro.sim import parallel
from repro.sim.parallel import (
    ExperimentSpec,
    SweepJournal,
    make_spec,
    run_spec,
    run_specs,
)

EPOCHS = 2
WORKLOADS = ("nginx", "redis")

_HAS_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not _HAS_FORK, reason="platform lacks fork start method"
)


def all_policy_specs() -> "list[ExperimentSpec]":
    return [
        make_spec(app, policy, epochs=EPOCHS)
        for app in WORKLOADS
        for policy in available_policies()
    ]


def result_dicts(outcomes) -> "list[dict]":
    return [dataclasses.asdict(o.result) for o in outcomes]


# ---------------------------------------------------------------------------
# Contract 1 + 2: no perturbation, no cache-key entanglement.
# ---------------------------------------------------------------------------


def test_recorder_on_equals_recorder_off_serial_every_policy():
    specs = all_policy_specs()
    plain = run_specs(specs)
    recorded = run_specs(specs, recorder=SweepRecorder())
    assert result_dicts(recorded) == result_dicts(plain)


@needs_fork
def test_recorder_on_equals_recorder_off_parallel(tmp_path):
    specs = all_policy_specs()
    plain = run_specs(specs, max_workers=2)
    recorded = run_specs(specs, max_workers=2, recorder=SweepRecorder())
    assert result_dicts(recorded) == result_dicts(plain)


def test_recorder_on_cache_entries_serve_recorder_off(tmp_path):
    # Keys carry no metrics state: entries written under a recorder-on
    # sweep hit verbatim in a recorder-off sweep, and vice versa.
    specs = [make_spec(app, "hetero-lru", epochs=EPOCHS) for app in WORKLOADS]
    cache_dir = tmp_path / "cache"
    recorded = run_specs(specs, cache=cache_dir, recorder=SweepRecorder())
    plain = run_specs(specs, cache=cache_dir)
    assert all(o.source == "cache" for o in plain)
    assert result_dicts(plain) == result_dicts(recorded)
    rec = SweepRecorder()
    rehit = run_specs(specs, cache=cache_dir, recorder=rec)
    assert all(o.source == "cache" for o in rehit)
    assert result_dicts(rehit) == result_dicts(recorded)
    assert rec.cache_hits == len(specs)


def test_recorder_is_not_a_run_spec_parameter():
    # The recorder attaches to run_specs (the harness), never run_spec
    # (the simulation path) — so it cannot touch worker-side state and
    # the CACHE_KEY_EXCLUDED contract anchor stays exhaustive.
    assert "recorder" not in inspect.signature(run_spec).parameters
    assert "recorder" in inspect.signature(run_specs).parameters
    assert "recorder" not in parallel.CACHE_KEY_EXCLUDED


# ---------------------------------------------------------------------------
# Contract 3: the recorded numbers are right.
# ---------------------------------------------------------------------------


def _counter_value(rec, name, **labels):
    metric = rec.registry.get(name)
    return metric.value(**labels) if metric is not None else None


def test_recorder_counts_dedup_and_outcomes(tmp_path):
    spec = make_spec("redis", "hetero-lru", epochs=EPOCHS)
    rec = SweepRecorder()
    outcomes = run_specs([spec, spec, spec], recorder=rec)
    assert all(o.ok for o in outcomes)
    assert rec.total == 3
    assert rec.distinct == 1
    assert _counter_value(rec, "sweep_specs_deduped_total") == 2
    assert _counter_value(rec, "sweep_specs_total", status="ok") == 3
    assert _counter_value(rec, "sweep_spec_results_total", source="serial") == 1
    snap = rec.registry.snapshot()["metrics"]["sweep_spec_seconds"]
    (series,) = snap["series"]
    assert series["labels"] == {"source": "serial"}
    assert series["count"] == 1


def test_recorder_counts_cache_hits_and_misses(tmp_path):
    specs = [make_spec(app, "hetero-lru", epochs=EPOCHS) for app in WORKLOADS]
    cache_dir = tmp_path / "cache"
    cold = SweepRecorder()
    run_specs(specs, cache=cache_dir, recorder=cold)
    assert _counter_value(cold, "sweep_cache_lookups_total", result="miss") == 2
    assert _counter_value(cold, "sweep_cache_lookups_total", result="hit") == 0
    warm = SweepRecorder()
    run_specs(specs, cache=cache_dir, recorder=warm)
    assert _counter_value(warm, "sweep_cache_lookups_total", result="hit") == 2
    assert warm.status()["hit_rate"] == 1.0


def test_recorder_counts_retries_by_kind(monkeypatch):
    real = parallel._run_one
    calls = {"n": 0}

    def flaky(spec, timeout_sec, capture_timelines=False):
        calls["n"] += 1
        if calls["n"] == 1:
            return ("timeout", "injected budget overrun", 0.0)
        return real(spec, timeout_sec, capture_timelines)

    monkeypatch.setattr(parallel, "_run_one", flaky)
    rec = SweepRecorder()
    outcomes = run_specs(
        [make_spec("redis", "hetero-lru", epochs=EPOCHS)],
        retries=2,
        retry_backoff_sec=0.0,
        recorder=rec,
    )
    assert outcomes[0].ok
    assert rec.retries == 1
    assert _counter_value(rec, "sweep_retries_total", kind="timeout") == 1


def test_recorder_counts_terminal_failures_by_kind(monkeypatch):
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: ("timeout", "injected", 0.0),
    )
    rec = SweepRecorder()
    outcomes = run_specs(
        [make_spec("redis", "hetero-lru", epochs=EPOCHS)], recorder=rec
    )
    assert not outcomes[0].ok
    assert _counter_value(rec, "sweep_specs_total", status="failed") == 1
    assert _counter_value(rec, "sweep_failures_total", kind="timeout") == 1
    assert rec.status()["failures_by_kind"] == {"timeout": 1}


def test_recorder_counts_journal_reuse_and_corrupt_lines(tmp_path):
    spec = make_spec("redis", "hetero-lru", epochs=EPOCHS)
    journal_path = tmp_path / "journal.jsonl"
    journal = SweepJournal(journal_path)
    journal.record(
        spec, "fp",
        parallel.SpecOutcome(
            spec=spec,
            error=parallel.SpecFailure(
                kind="error", message="injected", error_type="MigrationError"
            ),
        ),
    )
    with open(journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"key":"torn')  # kill mid-append
    rec = SweepRecorder()
    with pytest.warns(RuntimeWarning, match="corrupt line"):
        outcomes = run_specs(
            [spec], journal=journal, fingerprint="fp", recorder=rec
        )
    assert outcomes[0].source == "journal"
    assert _counter_value(rec, "sweep_journal_reused_total") == 1
    assert _counter_value(rec, "sweep_journal_corrupt_lines_total") == 1


def test_recorder_rolls_up_fault_counts():
    plan = FaultPlan(
        seed=13, faults=(FaultSpec("channel-drop", probability=1.0),)
    )
    spec = make_spec("redis", "hetero-coordinated", epochs=3, faults=plan)
    rec = SweepRecorder()
    outcomes = run_specs([spec], recorder=rec)
    assert outcomes[0].ok
    fired = outcomes[0].result.fault_counts
    assert fired.get("channel-drop", 0) > 0
    assert rec.fault_counts == fired
    assert (
        _counter_value(rec, "sweep_fault_events_total", kind="channel-drop")
        == fired["channel-drop"]
    )


def test_merge_fault_counts_accumulates():
    total: dict = {}
    merge_fault_counts(total, {"channel-drop": 2})
    merge_fault_counts(total, {"channel-drop": 1, "scan-lost": 4})
    assert total == {"channel-drop": 3, "scan-lost": 4}


def test_live_status_and_eta():
    rec = SweepRecorder()
    rec.sweep_started(total=4, distinct=4, max_workers=2)
    rec.outcome("a", "serial", "ok", 0.5)
    status = rec.status()
    assert status["done"] == 1
    assert status["queue_depth"] == 3
    assert status["eta_sec"] is not None and status["eta_sec"] > 0
    screen = format_live_status(status)
    assert "1/4" in screen
    assert "eta" in screen
    assert "\n" in screen  # multi-line, one screen


def test_metrics_artifact_formats(tmp_path):
    rec = SweepRecorder()
    rec.sweep_started(total=1, distinct=1, max_workers=1)
    rec.outcome("a", "serial", "ok", 0.5)
    json_path = rec.write_metrics(tmp_path / "m.json")
    snapshot = json.loads(json_path.read_text())
    assert snapshot["version"] == 1
    assert "sweep_specs_total" in snapshot["metrics"]
    prom_path = rec.write_metrics(tmp_path / "m.prom")
    text = prom_path.read_text()
    assert "# TYPE sweep_specs_total counter" in text
    assert 'sweep_specs_total{status="ok"} 1' in text


def test_recorder_rejects_unknown_status():
    rec = SweepRecorder()
    from repro.errors import ObservabilityError

    with pytest.raises(ObservabilityError):
        rec.outcome("a", "serial", "exploded", 0.1)


# ---------------------------------------------------------------------------
# Contract 4: the sweep trace is valid and composes with per-run traces.
# ---------------------------------------------------------------------------

#: Minimal Chrome trace_event JSON schema: the shape Perfetto's legacy
#: JSON importer requires of every event we emit.
TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "minLength": 1, "maxLength": 1},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "args": {"type": "object"},
                },
            },
        }
    },
}


def _sweep_trace(tmp_path):
    specs = [make_spec(app, "hetero-lru", epochs=EPOCHS) for app in WORKLOADS]
    rec = SweepRecorder()
    run_specs(specs, recorder=rec)
    path = tmp_path / "sweep.trace.json"
    rec.write_chrome_trace(path)
    return path


def test_sweep_trace_is_valid_and_laned(tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    path = _sweep_trace(tmp_path)
    payload = json.loads(path.read_text())
    jsonschema.validate(payload, TRACE_SCHEMA)
    events = payload["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 2
    assert all(e["pid"] == SWEEP_PID for e in events)
    # Serial execution packs onto one lane: spans must not overlap.
    lanes: dict = {}
    for span in sorted(spans, key=lambda e: e["ts"]):
        last_end = lanes.get(span["tid"], 0.0)
        assert span["ts"] >= last_end
        lanes[span["tid"]] = span["ts"] + span["dur"]


def test_sweep_and_run_traces_merge_into_one_view(tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    sweep_path = _sweep_trace(tmp_path)
    run_path = tmp_path / "run.trace.json"
    telemetry = Telemetry(sinks=[ChromeTraceSink(run_path)])
    run_spec(
        make_spec("redis", "hetero-lru", epochs=EPOCHS), telemetry=telemetry
    )
    merged_path = merge_traces([sweep_path, run_path], tmp_path / "all.json")
    merged = json.loads(merged_path.read_text())
    jsonschema.validate(merged, TRACE_SCHEMA)
    source_events = (
        json.loads(sweep_path.read_text())["traceEvents"]
        + json.loads(run_path.read_text())["traceEvents"]
    )
    assert len(merged["traceEvents"]) == len(source_events)
    # Pid ranges are disjoint after the remap: the sweep's lanes and the
    # run's virtual-time/profiler tracks render side by side.
    sweep_pids = {
        e["pid"] for e in merged["traceEvents"][: len(json.loads(
            sweep_path.read_text())["traceEvents"])]
    }
    run_pids = {
        e["pid"] for e in merged["traceEvents"][len(json.loads(
            sweep_path.read_text())["traceEvents"]):]
    }
    assert sweep_pids.isdisjoint(run_pids)


# ---------------------------------------------------------------------------
# Post-hoc reconstruction (`repro report`).
# ---------------------------------------------------------------------------


def test_reconstruct_report_matches_live_counts(tmp_path):
    specs = [make_spec(app, "hetero-lru", epochs=EPOCHS) for app in WORKLOADS]
    journal = SweepJournal(tmp_path / "journal.jsonl")
    rec = SweepRecorder()
    run_specs(specs, journal=journal, fingerprint="fp", recorder=rec)
    report = reconstruct_report(journal.load(), rec.registry.snapshot())
    assert report["specs"] == 2
    assert report["statuses"] == {"ok": 2}
    assert report["sources"] == {"serial": 2}
    assert report["executed_wall_sec"] > 0
    assert len(report["slowest"]) == 2
    assert report["cache"]["hits"] == 0  # no cache configured → no lookups
    assert report["cache"]["misses"] == 0
