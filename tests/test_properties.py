"""Property-based tests (hypothesis) on core data structures and
invariants: allocators never lose or duplicate frames, cost models stay
monotone, fairness maths stays in range."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guestos.buddy import BuddyAllocator
from repro.guestos.lru import SplitLru
from repro.hw.cache import CacheConfig, LastLevelCache, RegionAccess
from repro.hw.throttle import ThrottleConfig, throttled_device
from repro.core.coordinated import next_interval_ms
from repro.mem.extent import PageExtent, PageType
from repro.mem.frames import FramePool
from repro.units import MIB
from repro.vmm.migration import MigrationCostModel


# ----------------------------------------------------------------------
# Buddy allocator: conservation + invariants under arbitrary programs
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    span=st.integers(min_value=1, max_value=2048),
    program=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=256)),
        max_size=40,
    ),
)
def test_buddy_conserves_frames(span, program):
    buddy = BuddyAllocator(0, span)
    live: list = []
    for is_alloc, count in program:
        if is_alloc:
            if count <= buddy.free_frames:
                try:
                    live.extend(buddy.allocate_pages(count))
                except Exception:
                    pass  # fragmentation: allowed to fail, not to leak
        elif live:
            block = live.pop()
            buddy.free_span(block.start, block.count)
    held = sum(block.count for block in live)
    assert buddy.free_frames + held == span
    buddy.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                    max_size=20),
)
def test_buddy_allocations_never_overlap(counts):
    buddy = BuddyAllocator(0, 4096)
    seen: set[int] = set()
    for count in counts:
        if count > buddy.free_frames:
            break
        for block in buddy.allocate_pages(count):
            frames = set(range(block.start, block.end))
            assert not frames & seen
            seen |= frames


# ----------------------------------------------------------------------
# Frame pool
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    program=st.lists(st.integers(min_value=1, max_value=128), max_size=30),
)
def test_frame_pool_scattered_roundtrip(program):
    pool = FramePool(0, 2048)
    live = []
    for count in program:
        if count <= pool.free_frames:
            live.append(pool.allocate_scattered(count))
    for ranges in live:
        for frame_range in ranges:
            pool.free(frame_range)
    assert pool.free_frames == 2048
    pool.check_invariants()


# ----------------------------------------------------------------------
# Cache model
# ----------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    footprints=st.lists(
        st.integers(min_value=1, max_value=256), min_size=1, max_size=8
    ),
    reuse=st.floats(min_value=0.0, max_value=1.0),
    accesses=st.floats(min_value=0.0, max_value=1e6),
)
def test_cache_misses_bounded_by_accesses(footprints, reuse, accesses):
    cache = LastLevelCache(CacheConfig(capacity_bytes=32 * MIB))
    regions = [
        RegionAccess(f"r{i}", mib * MIB, accesses, 0.0, reuse)
        for i, mib in enumerate(footprints)
    ]
    for result in cache.apportion(regions):
        assert -1e-6 <= result.read_misses <= accesses + 1e-6
        assert 0.0 <= result.cached_fraction <= 1.0


@settings(max_examples=40, deadline=None)
@given(capacity_mib=st.integers(min_value=1, max_value=256))
def test_cache_bigger_is_never_worse(capacity_mib):
    small = LastLevelCache(CacheConfig(capacity_bytes=capacity_mib * MIB))
    big = LastLevelCache(CacheConfig(capacity_bytes=2 * capacity_mib * MIB))
    regions = [
        RegionAccess("a", 64 * MIB, 1000, 200, 0.8),
        RegionAccess("b", 16 * MIB, 5000, 100, 0.9),
    ]
    small_misses = sum(r.misses for r in small.apportion(regions))
    big_misses = sum(r.misses for r in big.apportion(regions))
    assert big_misses <= small_misses + 1e-6


# ----------------------------------------------------------------------
# Throttle model
# ----------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    latency_factor=st.floats(min_value=1.0, max_value=10.0),
    bandwidth_factor=st.floats(min_value=1.0, max_value=20.0),
)
def test_throttled_device_never_faster_than_base(latency_factor, bandwidth_factor):
    device = throttled_device(ThrottleConfig(latency_factor, bandwidth_factor))
    assert device.load_latency_ns >= 60.0 - 1e-9
    assert device.bandwidth_gbps <= 24.0 + 1e-9


# ----------------------------------------------------------------------
# Migration cost model
# ----------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    small=st.integers(min_value=1, max_value=10**6),
    larger=st.integers(min_value=1, max_value=10**6),
)
def test_migration_costs_monotone_in_batch(small, larger):
    small, larger = sorted((small, larger))
    model = MigrationCostModel()
    move_s, walk_s = model.per_page_costs(small)
    move_l, walk_l = model.per_page_costs(larger)
    assert move_l <= move_s + 1e-9
    assert walk_l <= walk_s + 1e-9


# ----------------------------------------------------------------------
# Equation 1
# ----------------------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(
    interval=st.floats(min_value=50.0, max_value=1000.0),
    delta=st.floats(min_value=-100.0, max_value=100.0),
)
def test_eq1_always_in_clamp_range(interval, delta):
    updated = next_interval_ms(interval, delta)
    assert 50.0 <= updated <= 1000.0
    # Direction: rising misses never lengthen, falling never shorten.
    if delta > 0:
        assert updated <= interval + 1e-9
    elif delta < 0:
        assert updated >= interval - 1e-9


# ----------------------------------------------------------------------
# LRU
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "access", "deactivate", "remove"]),
            st.integers(min_value=0, max_value=9),
        ),
        max_size=60,
    ),
)
def test_lru_page_accounting_consistent(ops):
    lru = SplitLru(node_id=0)
    extents: dict[int, PageExtent] = {}
    for op, key in ops:
        extent = extents.get(key)
        if op == "insert" and extent is None:
            extent = PageExtent(f"r{key}", PageType.HEAP, 10, 0)
            extents[key] = extent
            lru.insert(extent)
        elif extent is not None and lru.contains(extent):
            if op == "access":
                lru.record_access(extent)
            elif op == "deactivate":
                lru.deactivate(extent)
            elif op == "remove":
                lru.remove(extent)
                del extents[key]
    live_pages = sum(e.pages for e in extents.values())
    assert lru.active_pages + lru.inactive_pages == live_pages
