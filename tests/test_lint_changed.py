"""``repro lint --changed``: git-scoped runs for pre-commit latency.

The shallow pass lints only the files git reports as modified or
untracked; the deep passes still analyze the whole tree (they are
whole-program) but report only findings inside the changed files'
reverse call-graph closure, so a finding anchored in an *unchanged
caller* of changed code still surfaces while the rest of the tree's
noise does not.
"""

from __future__ import annotations

import subprocess
import textwrap

import pytest

from repro.cli import main
from repro.devtools.flow import (
    changed_python_files,
    deep_lint_paths,
    scope_to_changed,
)


def _git(*argv, cwd):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=cwd, check=True, capture_output=True,
    )


def _make_repo(tmp_path, files):
    root = tmp_path / "proj"
    for relpath, body in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
    _git("init", "-q", cwd=root)
    _git("add", "-A", cwd=root)
    _git("commit", "-q", "-m", "seed", cwd=root)
    return root


def test_changed_python_files_outside_git_is_none(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert changed_python_files([tmp_path]) is None


def test_changed_python_files_sees_modified_and_untracked(
    tmp_path, monkeypatch
):
    root = _make_repo(
        tmp_path, {"pkg/a.py": "x = 1\n", "pkg/b.py": "y = 2\n"}
    )
    monkeypatch.chdir(root)
    assert changed_python_files([root]) == set()
    (root / "pkg" / "a.py").write_text("x = 3\n", encoding="utf-8")
    (root / "pkg" / "new.py").write_text("z = 4\n", encoding="utf-8")
    changed = changed_python_files([root])
    assert {p.name for p in changed} == {"a.py", "new.py"}
    # Scoping respects the requested roots, not just the repo.
    assert changed_python_files([root / "nowhere"]) == set()


def test_cli_changed_scopes_shallow_findings(tmp_path, monkeypatch, capsys):
    # Both files carry the same shallow finding (a magic page constant);
    # only the modified one is reported.
    root = _make_repo(
        tmp_path,
        {
            "core/touched.py": "a = 1\n",
            "core/untouched.py": "pages = 4096\n",
        },
    )
    monkeypatch.chdir(root)
    (root / "core" / "touched.py").write_text(
        "pages = 4096\n", encoding="utf-8"
    )
    assert main(["lint", "--changed", str(root)]) == 1
    out = capsys.readouterr().out
    assert "touched.py" in out
    assert "untouched.py" not in out


def test_cli_changed_clean_when_nothing_changed(
    tmp_path, monkeypatch, capsys
):
    root = _make_repo(tmp_path, {"core/a.py": "pages = 4096\n"})
    monkeypatch.chdir(root)
    assert main(["lint", "--changed", str(root)]) == 0
    assert "no changed Python files" in capsys.readouterr().out


def test_cli_changed_rejects_write_baseline(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert (
        main(["lint", "--changed", "--deep", "--write-baseline", "."]) == 2
    )
    assert "conflict" in capsys.readouterr().err


def test_scope_to_changed_keeps_reverse_caller_closure(tmp_path):
    # vmm/scan.py changes; core/driver.py (unchanged) calls into it, and
    # core/bystander.py does not.  Deep findings survive scoping in the
    # changed file and its caller, but not in the bystander.
    files = {
        "vmm/scan.py": """\
            def scan_cost():
                return 1
        """,
        "core/driver.py": """\
            from repro.vmm.scan import scan_cost

            def drive():
                return scan_cost()
        """,
        "core/bystander.py": """\
            def idle():
                return 0
        """,
    }
    root = tmp_path / "src" / "repro"
    for relpath, body in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body), encoding="utf-8")
    report, index = deep_lint_paths([root], include_deep=True)
    # Synthesize one finding per file so scoping is observable even on
    # a clean toy tree.
    from repro.devtools.lint import Finding

    for name in ("vmm/scan.py", "core/driver.py", "core/bystander.py"):
        report.findings.append(
            Finding(
                rule_id="flow-dim-mix",
                path=str(root / name),
                line=1,
                col=0,
                message=f"synthetic finding in {name}",
            )
        )
    changed = {(root / "vmm" / "scan.py").resolve()}
    scoped = scope_to_changed(report, index, changed)
    kept = {finding.path.rsplit("/", 1)[-1] for finding in scoped.findings}
    assert kept == {"scan.py", "driver.py"}


def test_cli_changed_deep_runs(tmp_path, monkeypatch, capsys):
    root = _make_repo(
        tmp_path, {"src/repro/core/a.py": "def f():\n    return 1\n"}
    )
    monkeypatch.chdir(root)
    (root / "src" / "repro" / "core" / "a.py").write_text(
        "def f():\n    return 2\n", encoding="utf-8"
    )
    assert (
        main(
            [
                "lint", "--changed", "--deep", "--contracts",
                str(root / "src" / "repro"),
            ]
        )
        == 0
    )
    assert "0 finding(s)" in capsys.readouterr().out
