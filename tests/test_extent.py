"""Page extents and page types."""

import pytest

from repro.errors import AllocationError
from repro.mem.extent import ExtentState, PageExtent, PageType
from repro.units import PAGE_SIZE


def test_page_type_io_classification():
    assert PageType.PAGE_CACHE.is_io
    assert PageType.BUFFER_CACHE.is_io
    assert not PageType.HEAP.is_io
    assert not PageType.NETWORK_BUFFER.is_io  # slab-backed, not page cache


def test_page_type_migratability():
    # Section 4.1: linearly-mapped page-table and DMA pages never migrate.
    assert not PageType.PAGE_TABLE.is_migratable
    assert not PageType.DMA.is_migratable
    for page_type in (
        PageType.HEAP, PageType.PAGE_CACHE, PageType.SLAB,
        PageType.NETWORK_BUFFER, PageType.BUFFER_CACHE,
    ):
        assert page_type.is_migratable


def test_extent_ids_unique():
    a = PageExtent("r", PageType.HEAP, 10, 0)
    b = PageExtent("r", PageType.HEAP, 10, 0)
    assert a.extent_id != b.extent_id


def test_extent_requires_pages():
    with pytest.raises(AllocationError):
        PageExtent("r", PageType.HEAP, 0, 0)


def test_extent_bytes():
    extent = PageExtent("r", PageType.HEAP, 3, 0)
    assert extent.bytes == 3 * PAGE_SIZE


def test_record_access_sets_bits_and_temperature():
    extent = PageExtent("r", PageType.HEAP, 10, 0)
    extent.record_access(epoch=5, accesses=100.0)
    assert extent.accessed
    assert extent.last_access_epoch == 5
    assert extent.temperature == pytest.approx(100.0)
    extent.record_access(epoch=6, accesses=100.0)
    # EWMA with decay 0.5 converges to 2x the per-epoch rate.
    assert extent.temperature == pytest.approx(150.0)


def test_record_zero_access_keeps_bit_clear():
    extent = PageExtent("r", PageType.HEAP, 10, 0)
    extent.record_access(epoch=1, accesses=0.0)
    assert not extent.accessed
    assert extent.last_access_epoch == -1


def test_clear_hardware_bits_reads_and_clears():
    extent = PageExtent("r", PageType.HEAP, 10, 0)
    extent.record_access(epoch=1, accesses=5.0)
    extent.dirty = True
    assert extent.clear_hardware_bits() == (True, True)
    assert extent.clear_hardware_bits() == (False, False)


def test_default_state_is_active():
    extent = PageExtent("r", PageType.HEAP, 10, 0)
    assert extent.state is ExtentState.ACTIVE
    assert not extent.swapped
