"""Frame ranges and the machine frame pool."""

import pytest

from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.frames import FramePool, FrameRange


# ----------------------------------------------------------------------
# FrameRange
# ----------------------------------------------------------------------

def test_range_basics():
    r = FrameRange(10, 5)
    assert r.end == 15
    assert r.overlaps(FrameRange(14, 2))
    assert not r.overlaps(FrameRange(15, 2))


def test_range_validation():
    with pytest.raises(AllocationError):
        FrameRange(-1, 5)
    with pytest.raises(AllocationError):
        FrameRange(0, 0)


def test_range_split():
    head, tail = FrameRange(10, 5).split(2)
    assert head == FrameRange(10, 2)
    assert tail == FrameRange(12, 3)
    with pytest.raises(AllocationError):
        FrameRange(10, 5).split(5)
    with pytest.raises(AllocationError):
        FrameRange(10, 5).split(0)


# ----------------------------------------------------------------------
# FramePool
# ----------------------------------------------------------------------

def test_pool_first_fit_allocation():
    pool = FramePool(0, 100)
    a = pool.allocate(40)
    b = pool.allocate(30)
    assert a.start == 0 and b.start == 40
    assert pool.free_frames == 30
    assert pool.allocated_frames == 70


def test_pool_contiguous_exhaustion():
    pool = FramePool(0, 100)
    a = pool.allocate(40)
    pool.allocate(30)
    pool.free(a)  # free list: [0,40) and [70,100)
    with pytest.raises(OutOfMemoryError):
        pool.allocate(50)  # 70 free but not contiguous
    assert pool.free_frames == 70


def test_pool_scattered_allocation_spans_holes():
    pool = FramePool(0, 100)
    a = pool.allocate(40)
    pool.allocate(30)
    pool.free(a)
    ranges = pool.allocate_scattered(50)
    assert sum(r.count for r in ranges) == 50
    assert pool.free_frames == 20
    pool.check_invariants()


def test_pool_scattered_raises_without_side_effects():
    pool = FramePool(0, 50)
    pool.allocate(30)
    with pytest.raises(OutOfMemoryError):
        pool.allocate_scattered(30)
    assert pool.free_frames == 20


def test_pool_free_coalesces():
    pool = FramePool(0, 100)
    a = pool.allocate(30)
    b = pool.allocate(30)
    c = pool.allocate(40)
    pool.free(a)
    pool.free(c)
    pool.free(b)  # merges everything back into one span
    assert pool.free_frames == 100
    pool.check_invariants()
    full = pool.allocate(100)
    assert full.count == 100


def test_pool_double_free_detected():
    pool = FramePool(0, 100)
    a = pool.allocate(10)
    pool.free(a)
    with pytest.raises(AllocationError):
        pool.free(a)


def test_pool_foreign_range_rejected():
    pool = FramePool(0, 100)
    with pytest.raises(AllocationError):
        pool.free(FrameRange(200, 10))


def test_pool_zero_allocation_rejected():
    pool = FramePool(0, 100)
    with pytest.raises(AllocationError):
        pool.allocate(0)
    with pytest.raises(AllocationError):
        pool.allocate_scattered(-1)


def test_pool_base_offset():
    pool = FramePool(1000, 50, name="offset")
    r = pool.allocate(10)
    assert r.start == 1000
    pool.free(r)
    pool.check_invariants()
