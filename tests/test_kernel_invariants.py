"""Whole-kernel invariant checking, including after full simulations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_kernel
from repro.core import make_policy
from repro.errors import OutOfMemoryError
from repro.mem.extent import PageType
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config
from repro.workloads.registry import make_workload


def test_fresh_kernel_is_consistent(kernel):
    kernel.check_invariants()


def test_consistent_after_alloc_free_cycles(kernel):
    kernel.begin_epoch(0)
    for i in range(8):
        kernel.allocate_region(f"r{i}", PageType.HEAP, 200 + i, [0, 1])
    kernel.check_invariants()
    for i in range(0, 8, 2):
        kernel.free_region(f"r{i}")
    kernel.check_invariants()


def test_consistent_after_moves_and_splits(kernel):
    kernel.begin_epoch(0)
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 500, [0])
    kernel.split_extent(extent, 123)
    kernel.move_extent(extent, 1)
    kernel.check_invariants()


def test_consistent_after_shrink_and_swap(kernel):
    slow = kernel.nodes[1]
    usable = slow.free_pages_for(PageType.HEAP)
    kernel.begin_epoch(0)
    kernel.allocate_region("cold", PageType.HEAP, usable, [1])
    kernel.shrink_node(1, slow.free_pages + 2000)
    kernel.check_invariants()
    kernel.touch_region("cold", 100.0)
    kernel.check_invariants()


def test_consistent_after_hide_reveal(kernel):
    kernel.hide_pages(0, 500)
    kernel.check_invariants()
    kernel.reveal_pages(0, 200)
    kernel.check_invariants()


@pytest.mark.parametrize(
    "policy", ["heap-od", "hetero-lru", "hetero-coordinated", "vmm-exclusive"]
)
def test_consistent_after_full_simulation(policy):
    engine = SimulationEngine(
        build_config(fast_ratio=0.25),
        make_workload("leveldb"),
        make_policy(policy),
    )
    engine.run(20)
    engine.kernel.check_invariants()


@settings(max_examples=25, deadline=None)
@given(
    program=st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free", "touch", "move", "split"]),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=1, max_value=600),
        ),
        max_size=30,
    ),
)
def test_invariants_hold_under_random_programs(program):
    kernel = make_kernel(fast_mib=8, slow_mib=32)
    kernel.begin_epoch(0)
    live: dict[int, str] = {}
    counter = 0
    for op, key, pages in program:
        region_id = live.get(key)
        try:
            if op == "alloc" and region_id is None:
                counter += 1
                name = f"r{key}-{counter}"
                kernel.allocate_region(name, PageType.HEAP, pages, [0, 1])
                live[key] = name
            elif region_id is None:
                continue
            elif op == "free":
                kernel.free_region(region_id)
                del live[key]
            elif op == "touch":
                kernel.touch_region(region_id, float(pages))
            elif op == "move":
                for extent in kernel.region_extents(region_id):
                    target = 1 if extent.node_id == 0 else 0
                    try:
                        kernel.move_extent(extent, target)
                    except OutOfMemoryError:
                        pass
                    break
            elif op == "split":
                extents = kernel.region_extents(region_id)
                if extents and extents[0].pages > 1:
                    kernel.split_extent(
                        extents[0], max(1, extents[0].pages // 2)
                    )
        except OutOfMemoryError:
            pass
    kernel.check_invariants()
