"""TLB cost meter, perf counters, NUMA topology."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.counters import PerfCounters
from repro.hw.memdevice import DRAM
from repro.hw.tlb import Tlb, TlbConfig
from repro.hw.topology import (
    NumaTopology,
    Socket,
    REMOTE_BANDWIDTH_FACTOR,
    REMOTE_LATENCY_FACTOR,
    remote_dram,
)


# ----------------------------------------------------------------------
# TLB
# ----------------------------------------------------------------------

def test_tlb_flush_and_shootdown_costs_accumulate():
    tlb = Tlb()
    cost = tlb.flush() + tlb.shootdown() + tlb.flush()
    assert tlb.flushes == 2
    assert tlb.shootdowns == 1
    assert tlb.total_cost_ns == pytest.approx(cost)


def test_tlb_reset():
    tlb = Tlb()
    tlb.flush()
    tlb.reset()
    assert tlb.flushes == 0
    assert tlb.total_cost_ns == 0.0


def test_tlb_config_validation():
    with pytest.raises(ConfigurationError):
        TlbConfig(full_flush_ns=-1)
    with pytest.raises(ConfigurationError):
        TlbConfig(entries=0)


# ----------------------------------------------------------------------
# Perf counters (Equation 1 input)
# ----------------------------------------------------------------------

def test_llc_delta_needs_two_epochs():
    counters = PerfCounters()
    assert counters.llc_miss_delta() == 0.0
    counters.record_epoch(100.0, 1e6)
    assert counters.llc_miss_delta() == 0.0


def test_llc_delta_relative_change():
    counters = PerfCounters()
    counters.record_epoch(100.0, 1e6)
    counters.record_epoch(150.0, 1e6)
    assert counters.llc_miss_delta() == pytest.approx(0.5)
    counters.record_epoch(75.0, 1e6)
    assert counters.llc_miss_delta() == pytest.approx(-0.5)


def test_llc_delta_zero_previous_is_safe():
    counters = PerfCounters()
    counters.record_epoch(0.0, 1e6)
    counters.record_epoch(50.0, 1e6)
    assert counters.llc_miss_delta() == 0.0


def test_counters_mpki():
    counters = PerfCounters()
    counters.record_epoch(1000.0, 1_000_000)
    assert counters.mpki == pytest.approx(1.0)
    assert counters.last_llc_misses == 1000.0


# ----------------------------------------------------------------------
# Topology / remote NUMA
# ----------------------------------------------------------------------

def test_remote_dram_penalties():
    remote = remote_dram()
    assert remote.load_latency_ns == pytest.approx(
        DRAM.load_latency_ns * REMOTE_LATENCY_FACTOR
    )
    assert remote.bandwidth_gbps == pytest.approx(
        DRAM.bandwidth_gbps * REMOTE_BANDWIDTH_FACTOR
    )
    # Observation 2: the remote penalty is a fraction of heterogeneity's.
    assert remote.load_latency_ns < 2 * DRAM.load_latency_ns


def test_default_topology_two_sockets():
    topology = NumaTopology()
    assert topology.total_cores == 16
    local = topology.device_for(0, from_socket=0)
    remote = topology.device_for(1, from_socket=0)
    assert local.load_latency_ns < remote.load_latency_ns


def test_duplicate_socket_ids_rejected():
    with pytest.raises(ConfigurationError):
        NumaTopology(
            sockets=(
                Socket(socket_id=0, cores=4, devices=(DRAM,)),
                Socket(socket_id=0, cores=4, devices=(DRAM,)),
            )
        )


def test_unknown_socket_rejected():
    with pytest.raises(ConfigurationError):
        NumaTopology().device_for(9, from_socket=0)


def test_socket_needs_cores():
    with pytest.raises(ConfigurationError):
        Socket(socket_id=0, cores=0)
