"""TLB cost meter, perf counters, NUMA topology."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.hw.counters import PerfCounters, ZERO_SNAPSHOT
from repro.hw.memdevice import DRAM, NVM_PCM, topology_sort_key
from repro.hw.tlb import Tlb, TlbConfig
from repro.hw.topology import (
    NumaTopology,
    Socket,
    REMOTE_BANDWIDTH_FACTOR,
    REMOTE_LATENCY_FACTOR,
    remote_dram,
)


# ----------------------------------------------------------------------
# TLB
# ----------------------------------------------------------------------

def test_tlb_flush_and_shootdown_costs_accumulate():
    tlb = Tlb()
    cost = tlb.flush() + tlb.shootdown() + tlb.flush()
    assert tlb.flushes == 2
    assert tlb.shootdowns == 1
    assert tlb.total_cost_ns == pytest.approx(cost)


def test_tlb_reset():
    tlb = Tlb()
    tlb.flush()
    tlb.reset()
    assert tlb.flushes == 0
    assert tlb.total_cost_ns == 0.0


def test_tlb_config_validation():
    with pytest.raises(ConfigurationError):
        TlbConfig(full_flush_ns=-1)
    with pytest.raises(ConfigurationError):
        TlbConfig(entries=0)


# ----------------------------------------------------------------------
# Perf counters (Equation 1 input)
# ----------------------------------------------------------------------

def test_llc_delta_needs_two_epochs():
    counters = PerfCounters()
    assert counters.llc_miss_delta() == 0.0
    counters.record_epoch(100.0, 1e6)
    assert counters.llc_miss_delta() == 0.0


def test_llc_delta_relative_change():
    counters = PerfCounters()
    counters.record_epoch(100.0, 1e6)
    counters.record_epoch(150.0, 1e6)
    assert counters.llc_miss_delta() == pytest.approx(0.5)
    counters.record_epoch(75.0, 1e6)
    assert counters.llc_miss_delta() == pytest.approx(-0.5)


def test_llc_delta_zero_previous_is_safe():
    counters = PerfCounters()
    counters.record_epoch(0.0, 1e6)
    counters.record_epoch(50.0, 1e6)
    assert counters.llc_miss_delta() == 0.0


def test_counters_mpki():
    counters = PerfCounters()
    counters.record_epoch(1000.0, 1_000_000)
    assert counters.mpki == pytest.approx(1.0)
    assert counters.last_llc_misses == 1000.0


# ----------------------------------------------------------------------
# Counter snapshots (perf-style read/delta/reset)
# ----------------------------------------------------------------------

def test_snapshot_read_is_cumulative():
    counters = PerfCounters()
    assert counters.read() == ZERO_SNAPSHOT
    counters.record_epoch(100.0, 1e6)
    counters.record_epoch(50.0, 2e6)
    snap = counters.read()
    assert snap.epochs == 2
    assert snap.llc_misses == pytest.approx(150.0)
    assert snap.instructions == pytest.approx(3e6)


def test_snapshot_delta_gives_interval_contribution():
    counters = PerfCounters()
    counters.record_epoch(100.0, 1e6)
    first = counters.read()
    counters.record_epoch(40.0, 5e5)
    counters.record_epoch(60.0, 5e5)
    interval = counters.read().delta(first)
    assert interval.epochs == 2
    assert interval.llc_misses == pytest.approx(100.0)
    assert interval.instructions == pytest.approx(1e6)
    assert interval.mpki == pytest.approx(0.1)


def test_snapshot_totals_are_wraparound_free():
    # Unlike 32/48-bit MSRs, totals accumulate in Python numbers: values
    # far past any hardware counter width still delta exactly.
    counters = PerfCounters()
    counters.record_epoch(2.0**48, 2.0**53)
    before = counters.read()
    counters.record_epoch(2.0**48, 2.0**53)
    interval = counters.read().delta(before)
    assert interval.llc_misses == 2.0**48
    assert interval.instructions == 2.0**53
    assert counters.read().llc_misses == 2.0**49


def test_snapshot_delta_rejects_reversed_order():
    counters = PerfCounters()
    counters.record_epoch(100.0, 1e6)
    earlier = counters.read()
    counters.record_epoch(100.0, 1e6)
    later = counters.read()
    with pytest.raises(ConfigurationError):
        earlier.delta(later)


def test_snapshot_delta_rejects_crossing_a_reset():
    counters = PerfCounters()
    counters.record_epoch(100.0, 1e6)
    before_reset = counters.read()
    counters.reset()
    assert counters.read() == ZERO_SNAPSHOT
    counters.record_epoch(10.0, 1e5)
    with pytest.raises(ConfigurationError):
        counters.read().delta(before_reset)


def test_reset_clears_history_and_totals():
    counters = PerfCounters()
    counters.record_epoch(100.0, 1e6)
    counters.record_epoch(150.0, 1e6)
    counters.reset()
    assert counters.llc_miss_delta() == 0.0
    assert counters.last_llc_misses == 0.0
    assert counters.mpki == 0.0


def test_tlb_snapshot_delta():
    tlb = Tlb()
    tlb.flush()
    before = tlb.snapshot()
    tlb.flush()
    tlb.shootdown()
    interval = tlb.snapshot().delta(before)
    assert interval.flushes == 1
    assert interval.shootdowns == 1


# ----------------------------------------------------------------------
# Deterministic device ordering
# ----------------------------------------------------------------------

def test_topology_sort_key_orders_fastest_first():
    devices = [NVM_PCM, DRAM, remote_dram()]
    ordered = sorted(devices, key=topology_sort_key)
    assert ordered[0] is DRAM
    assert ordered[-1] is NVM_PCM


def test_topology_sort_key_breaks_latency_ties_by_bandwidth():
    slow_twin = dataclasses.replace(
        DRAM, name="dram-narrow", bandwidth_gbps=DRAM.bandwidth_gbps / 2
    )
    ordered = sorted([slow_twin, DRAM], key=topology_sort_key)
    assert ordered[0] is DRAM  # higher bandwidth wins the tie


# ----------------------------------------------------------------------
# Topology / remote NUMA
# ----------------------------------------------------------------------

def test_remote_dram_penalties():
    remote = remote_dram()
    assert remote.load_latency_ns == pytest.approx(
        DRAM.load_latency_ns * REMOTE_LATENCY_FACTOR
    )
    assert remote.bandwidth_gbps == pytest.approx(
        DRAM.bandwidth_gbps * REMOTE_BANDWIDTH_FACTOR
    )
    # Observation 2: the remote penalty is a fraction of heterogeneity's.
    assert remote.load_latency_ns < 2 * DRAM.load_latency_ns


def test_default_topology_two_sockets():
    topology = NumaTopology()
    assert topology.total_cores == 16
    local = topology.device_for(0, from_socket=0)
    remote = topology.device_for(1, from_socket=0)
    assert local.load_latency_ns < remote.load_latency_ns


def test_duplicate_socket_ids_rejected():
    with pytest.raises(ConfigurationError):
        NumaTopology(
            sockets=(
                Socket(socket_id=0, cores=4, devices=(DRAM,)),
                Socket(socket_id=0, cores=4, devices=(DRAM,)),
            )
        )


def test_unknown_socket_rejected():
    with pytest.raises(ConfigurationError):
        NumaTopology().device_for(9, from_socket=0)


def test_socket_needs_cores():
    with pytest.raises(ConfigurationError):
        Socket(socket_id=0, cores=0)
