"""Slab allocator."""

import pytest

from repro.errors import AllocationError
from repro.guestos.slab import SlabAllocator, SlabCache
from repro.mem.extent import PageType
from repro.units import PAGE_SIZE


class RecordingBackend:
    """Captures slab page requests/releases."""

    def __init__(self):
        self.live: dict[object, tuple[str, int, PageType]] = {}
        self.counter = 0

    def source(self, cache_name, pages, page_type):
        self.counter += 1
        token = f"slab-{self.counter}"
        self.live[token] = (cache_name, pages, page_type)
        return token

    def release(self, cache_name, token):
        assert self.live.pop(token)[0] == cache_name


@pytest.fixture
def backend():
    return RecordingBackend()


def make_cache(backend, object_size=1024, pages_per_slab=2) -> SlabCache:
    return SlabCache(
        "test", object_size, backend.source, backend.release,
        pages_per_slab=pages_per_slab,
    )


def test_objects_per_slab(backend):
    cache = make_cache(backend, object_size=1024, pages_per_slab=2)
    assert cache.objects_per_slab == 2 * PAGE_SIZE // 1024


def test_allocation_grows_slab_lazily(backend):
    cache = make_cache(backend)
    assert cache.total_pages == 0
    cache.allocate()
    assert cache.total_pages == 2
    assert len(backend.live) == 1


def test_slab_reused_until_full(backend):
    cache = make_cache(backend)
    for _ in range(cache.objects_per_slab):
        cache.allocate()
    assert len(backend.live) == 1  # all from the first slab
    cache.allocate()
    assert len(backend.live) == 2  # overflow grew a second slab


def test_free_releases_empty_slabs(backend):
    cache = make_cache(backend)
    handles = [cache.allocate() for _ in range(cache.objects_per_slab)]
    for handle in handles:
        cache.free(handle)
    assert cache.total_pages == 0
    assert not backend.live
    assert cache.stats.slabs_destroyed == 1


def test_partial_slab_rejoins_free_pool(backend):
    cache = make_cache(backend)
    handles = [cache.allocate() for _ in range(cache.objects_per_slab)]
    cache.free(handles[0])
    cache.allocate()  # must reuse the freed slot, not grow
    assert len(backend.live) == 1


def test_double_free_detected(backend):
    cache = make_cache(backend)
    a = cache.allocate()
    b = cache.allocate()
    cache.free(a)
    with pytest.raises(AllocationError):
        cache.free(a)
    cache.free(b)


def test_free_unknown_slab_rejected(backend):
    cache = make_cache(backend)
    with pytest.raises(AllocationError):
        cache.free((99, 0))


def test_oversized_object_rejected(backend):
    with pytest.raises(AllocationError):
        make_cache(backend, object_size=3 * PAGE_SIZE, pages_per_slab=1)


def test_allocator_default_caches(backend):
    allocator = SlabAllocator(backend.source, backend.release)
    assert "skbuff" in allocator.caches
    assert allocator.cache("skbuff").page_type is PageType.NETWORK_BUFFER
    assert allocator.cache("dentry").page_type is PageType.SLAB


def test_allocator_create_and_lookup(backend):
    allocator = SlabAllocator(backend.source, backend.release)
    allocator.create_cache("custom", 256)
    assert allocator.cache("custom").object_size == 256
    with pytest.raises(AllocationError):
        allocator.create_cache("custom", 256)
    with pytest.raises(AllocationError):
        allocator.cache("nope")


def test_live_object_accounting(backend):
    cache = make_cache(backend)
    handles = [cache.allocate() for _ in range(3)]
    assert cache.live_objects == 3
    cache.free(handles[1])
    assert cache.live_objects == 2
