"""Host metrics registry: determinism, typing, exposition contracts.

The registry's load-bearing properties:

1. **Deterministic exposition** — two registries that observed the same
   events snapshot byte-identically (sorted metric names, sorted series
   keys, canonical JSON), so metrics artifacts diff cleanly across runs.
2. **Typed, validated series** — counters cannot decrease, label sets
   are declared once and enforced per observation, re-registration with
   a different shape errors instead of silently forking state.
3. **Prometheus text exposition** — the snapshot renders in the 0.0.4
   text format (HELP/TYPE lines, escaped labels, cumulative histogram
   buckets with ``+Inf``), ready for a scrape endpoint.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    snapshot_delta,
)


def test_counter_accumulates_per_label_series():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "Requests.", labels=("status",))
    c.inc(status="ok")
    c.inc(2, status="ok")
    c.inc(status="failed")
    assert c.value(status="ok") == 3
    assert c.value(status="failed") == 1
    assert c.value(status="never-seen") == 0


def test_counter_rejects_decrease_and_wrong_labels():
    reg = MetricsRegistry()
    c = reg.counter("events_total", labels=("kind",))
    with pytest.raises(ObservabilityError):
        c.inc(-1, kind="x")
    with pytest.raises(ObservabilityError):
        c.inc(status="x")  # undeclared label name
    with pytest.raises(ObservabilityError):
        c.inc()  # missing the declared label


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(5)
    g.add(-2)
    assert g.value() == 3


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    (entry,) = h.series_snapshot()
    assert entry["buckets"] == {"0.1": 1, "1": 3, "10": 4}
    assert entry["count"] == 5
    assert entry["sum"] == pytest.approx(56.05)


def test_histogram_rejects_unsorted_or_empty_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ObservabilityError):
        reg.histogram("bad", buckets=(1.0, 0.5))
    with pytest.raises(ObservabilityError):
        reg.histogram("empty", buckets=())


def test_get_or_create_returns_same_metric():
    reg = MetricsRegistry()
    first = reg.counter("hits_total", labels=("kind",))
    again = reg.counter("hits_total", labels=("kind",))
    assert first is again
    assert len(reg) == 1


def test_reregistration_with_different_shape_errors():
    reg = MetricsRegistry()
    reg.counter("thing_total", labels=("a",))
    with pytest.raises(ObservabilityError):
        reg.gauge("thing_total")  # type change
    with pytest.raises(ObservabilityError):
        reg.counter("thing_total", labels=("b",))  # label change


@pytest.mark.parametrize("bad", ["", "0abc", "with space", "dash-ed"])
def test_metric_name_validation(bad):
    reg = MetricsRegistry()
    with pytest.raises(ObservabilityError):
        reg.counter(bad)


def test_reserved_and_duplicate_label_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ObservabilityError):
        reg.counter("a_total", labels=("__reserved",))
    with pytest.raises(ObservabilityError):
        reg.counter("b_total", labels=("x", "x"))


def _drive(reg: MetricsRegistry) -> None:
    c = reg.counter("ops_total", "Ops.", labels=("kind",))
    c.inc(kind="read")
    c.inc(3, kind="write")
    reg.gauge("depth", "Depth.").set(7)
    h = reg.histogram("sec", "Secs.", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(5.0)


def test_snapshot_is_deterministic_across_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    _drive(a)
    _drive(b)
    assert a.to_json() == b.to_json()
    # Canonical JSON: re-dumping the parsed snapshot round-trips.
    parsed = json.loads(a.to_json())
    assert parsed["version"] == 1
    assert sorted(parsed["metrics"]) == ["depth", "ops_total", "sec"]


def test_snapshot_series_sorted_by_label_values():
    reg = MetricsRegistry()
    c = reg.counter("x_total", labels=("k",))
    c.inc(k="zebra")
    c.inc(k="alpha")
    snap = reg.snapshot()["metrics"]["x_total"]
    assert [s["labels"]["k"] for s in snap["series"]] == ["alpha", "zebra"]


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    _drive(reg)
    text = reg.to_prometheus()
    lines = text.splitlines()
    assert "# HELP ops_total Ops." in lines
    assert "# TYPE ops_total counter" in lines
    assert 'ops_total{kind="read"} 1' in lines
    assert 'ops_total{kind="write"} 3' in lines
    assert "# TYPE depth gauge" in lines
    assert "depth 7" in lines
    assert "# TYPE sec histogram" in lines
    assert 'sec_bucket{le="1"} 1' in lines
    assert 'sec_bucket{le="10"} 2' in lines
    assert 'sec_bucket{le="+Inf"} 2' in lines
    assert "sec_sum 5.5" in lines
    assert "sec_count 2" in lines
    assert text.endswith("\n")


def test_prometheus_label_value_escaping():
    reg = MetricsRegistry()
    c = reg.counter("msg_total", labels=("text",))
    c.inc(text='say "hi"\nback\\slash')
    text = reg.to_prometheus()
    assert 'msg_total{text="say \\"hi\\"\\nback\\\\slash"} 1' in text


def test_snapshot_delta_counters_and_histograms_subtract():
    reg = MetricsRegistry()
    _drive(reg)
    before = reg.snapshot()
    c = reg.counter("ops_total", labels=("kind",))
    c.inc(5, kind="read")
    c.inc(kind="delete")  # new series: passes through whole
    reg.gauge("depth").set(2)
    reg.histogram("sec", buckets=(1.0, 10.0)).observe(0.25)
    after = reg.snapshot()
    delta = snapshot_delta(before, after)
    ops = {
        s["labels"]["kind"]: s["value"]
        for s in delta["metrics"]["ops_total"]["series"]
    }
    assert ops == {"read": 5, "write": 0, "delete": 1}
    # Gauges are levels, not flows: the delta takes the newer reading.
    assert delta["metrics"]["depth"]["series"][0]["value"] == 2
    (sec,) = delta["metrics"]["sec"]["series"]
    assert sec["count"] == 1
    assert sec["sum"] == pytest.approx(0.25)
    assert sec["buckets"] == {"1": 1, "10": 1}


def test_default_buckets_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
