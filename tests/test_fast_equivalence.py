"""Differential oracle for the array-backed fast path.

``repro.sim.fast`` re-implements the hottest ``SimulationEngine.step()``
phases with flat array-backed structures.  Its contract is *bit
identity*: with ``fast_path`` on, every :class:`RunResult` field —
stats, wear, timeline, final placement — must equal the slow path's
field for field (``dataclasses.asdict`` comparison, so nested floats
must match exactly, which pins allocation order, float addition order,
and dict insertion order).

The slow path is the oracle.  These tests sweep every registered
policy, the fault/telemetry/sanitizer modes, and (via Hypothesis) the
synthetic-workload generator, so any fast-path divergence fails here
before it can skew a figure.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import available_policies, make_policy
from repro.faults import FaultPlan
from repro.obs.bus import Telemetry
from repro.sim.runner import build_config, run_experiment
from repro.workloads.synthetic import make_synthetic

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FAULT_PLAN = FaultPlan.from_dict(
    json.loads((REPO_ROOT / "examples" / "faultplan.json").read_text(encoding="utf-8"))
)


def _run(app, policy_name, fast, *, epochs, slow_gib=2.0, faults=None,
         telemetry=False, sanitize=False):
    policy = make_policy(policy_name)
    config = build_config(
        fast_ratio=0.25,
        slow_gib=slow_gib,
        unlimited_fast=policy.requires_unlimited_fast,
    )
    config.fast_path = fast
    config.sanitize = sanitize
    bus = Telemetry() if telemetry else None
    result = run_experiment(
        app, policy, epochs=epochs, config=config, telemetry=bus, faults=faults
    )
    return dataclasses.asdict(result)


@pytest.mark.parametrize("policy_name", available_policies())
def test_every_policy_is_bit_identical(policy_name):
    reference = _run("redis", policy_name, False, epochs=3)
    fast = _run("redis", policy_name, True, epochs=3)
    assert fast == reference


@pytest.mark.parametrize(
    "label, kwargs",
    [
        ("faults", dict(faults=FAULT_PLAN)),
        ("telemetry", dict(telemetry=True)),
        ("faults+telemetry", dict(faults=FAULT_PLAN, telemetry=True)),
        ("sanitize", dict(sanitize=True)),
        ("sanitize+faults", dict(sanitize=True, faults=FAULT_PLAN)),
    ],
)
def test_modes_are_bit_identical(label, kwargs):
    reference = _run("redis", "hetero-lru", False, epochs=4, **kwargs)
    fast = _run("redis", "hetero-lru", True, epochs=4, **kwargs)
    assert fast == reference, label


def _plan_from(seed, drop_p, derate_p):
    """A small deterministic fault plan built from drawn parameters."""
    return FaultPlan.from_dict(
        {
            "seed": seed,
            "faults": [
                {"kind": "channel-drop", "probability": drop_p},
                {
                    "kind": "device-derate",
                    "probability": derate_p,
                    "start_epoch": 1,
                    "latency_factor": 2.0,
                },
            ],
        }
    )


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    footprint_gib=st.sampled_from([0.25, 0.5, 1.0]),
    io_intensity=st.sampled_from([0.1, 0.3, 0.6]),
    locality_skew=st.sampled_from([0.4, 0.7, 0.9]),
    mpki=st.sampled_from([4.0, 12.0, 24.0]),
    periodic_cold=st.booleans(),
    with_faults=st.booleans(),
    drop_p=st.sampled_from([0.1, 0.2, 0.5]),
)
@settings(max_examples=8, deadline=None)
def test_synthetic_workloads_are_bit_identical(
    seed, footprint_gib, io_intensity, locality_skew, mpki,
    periodic_cold, with_faults, drop_p,
):
    def workload():
        # Rebuilt per run: statistical workloads carry RNG state.
        return make_synthetic(
            seed,
            footprint_gib=footprint_gib,
            io_intensity=io_intensity,
            locality_skew=locality_skew,
            mpki=mpki,
            run_epochs=4,
            periodic_cold=periodic_cold,
        )

    faults = _plan_from(seed, drop_p, 0.3) if with_faults else None
    reference = _run(workload(), "hetero-lru", False,
                     epochs=4, slow_gib=1.0, faults=faults)
    fast = _run(workload(), "hetero-lru", True,
                epochs=4, slow_gib=1.0, faults=faults)
    assert fast == reference
