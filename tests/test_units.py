"""Unit conversion helpers."""

import pytest

from repro import units


def test_byte_constants_are_powers_of_two():
    assert units.KIB == 2**10
    assert units.MIB == 2**20
    assert units.GIB == 2**30
    assert units.PAGE_SIZE == 4096
    assert units.CACHE_LINE == 64


def test_pages_of_bytes_rounds_up():
    assert units.pages_of_bytes(0) == 0
    assert units.pages_of_bytes(1) == 1
    assert units.pages_of_bytes(4096) == 1
    assert units.pages_of_bytes(4097) == 2
    assert units.pages_of_bytes(units.GIB) == 262144


def test_pages_of_bytes_rejects_negative():
    with pytest.raises(ValueError):
        units.pages_of_bytes(-1)


def test_bytes_of_pages_roundtrip():
    for pages in (0, 1, 7, 262144):
        assert units.pages_of_bytes(units.bytes_of_pages(pages)) == pages


def test_bytes_of_pages_rejects_negative():
    with pytest.raises(ValueError):
        units.bytes_of_pages(-3)


def test_gib_mib_fractional():
    assert units.gib(0.5) == units.GIB // 2
    assert units.mib(1.5) == units.MIB + units.MIB // 2


def test_time_conversions():
    assert units.ns_to_ms(1_000_000) == 1.0
    assert units.ns_to_sec(2_000_000_000) == 2.0


def test_bandwidth_conversion_identity():
    # 1 GB/s is exactly 1 byte/ns.
    assert units.gbps_to_bytes_per_ns(24.0) == 24.0
