"""Coordinated policy internals with a hypervisor-backed binding."""

import pytest

from repro.core.coordinated import CoordinatedPolicy
from repro.core.policy import PolicyBinding
from repro.guestos.balloon import TierReservation
from repro.guestos.kernel import GuestKernel
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.mem.extent import PageType
from repro.units import MIB
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.sharing import MaxMinSharing


@pytest.fixture
def stack():
    hypervisor = Hypervisor(
        {
            NodeTier.FAST: DRAM.with_capacity(16 * MIB),
            NodeTier.SLOW: NVM_PCM.with_capacity(128 * MIB),
        },
        sharing_policy=MaxMinSharing(),
    )
    domain = hypervisor.create_domain(
        "vm",
        {
            NodeTier.FAST: TierReservation(4096, 4096),
            NodeTier.SLOW: TierReservation(32768, 32768),
        },
    )
    nodes = hypervisor.build_guest_nodes(domain)
    kernel = GuestKernel(
        nodes, cpus=2, balloon=hypervisor.make_balloon_frontend(domain)
    )
    hypervisor.attach_kernel(domain, kernel)
    policy = CoordinatedPolicy(initial_interval_ms=100.0)
    policy.bind(
        PolicyBinding(kernel=kernel, hypervisor=hypervisor, domain=domain)
    )
    return hypervisor, domain, kernel, policy


def test_tracking_list_publishes_heap_regions_only(stack):
    hypervisor, domain, kernel, policy = stack
    kernel.begin_epoch(0)
    kernel.allocate_region("heap", PageType.HEAP, 128, [1])
    kernel.allocate_region("io", PageType.PAGE_CACHE, 128, [1])
    channel = hypervisor.channel(domain.domain_id)
    policy._publish_tracking(channel)
    regions, exceptions = channel.vmm_read_tracking()
    assert regions == ["heap"]
    assert PageType.PAGE_CACHE in exceptions


def test_scan_reports_hot_heap_extents(stack):
    hypervisor, domain, kernel, policy = stack
    channel = hypervisor.channel(domain.domain_id)
    kernel.begin_epoch(0)
    kernel.allocate_region("heap", PageType.HEAP, 512, [1])
    for epoch in range(6):
        kernel.begin_epoch(epoch)
        kernel.touch_region("heap", 512 * 50.0)
        policy._publish_tracking(channel)
        policy._vmm_scan(channel)
    assert channel.hot_report  # the VMM found the heap hot


def test_guest_migrate_validates_and_moves(stack):
    hypervisor, domain, kernel, policy = stack
    channel = hypervisor.channel(domain.domain_id)
    kernel.begin_epoch(0)
    (hot,) = kernel.allocate_region("heap", PageType.HEAP, 512, [1])
    for epoch in range(6):
        kernel.begin_epoch(epoch)
        kernel.touch_region("heap", 512 * 50.0)
        policy._publish_tracking(channel)
        policy._vmm_scan(channel)
    cost = policy._guest_migrate(channel)
    assert cost > 0
    assert policy.pages_migrated == 512
    assert hot.node_id in kernel.fast_node_ids


def test_guest_migrate_skips_dead_and_dirty(stack):
    hypervisor, domain, kernel, policy = stack
    channel = hypervisor.channel(domain.domain_id)
    kernel.begin_epoch(0)
    (dirty_io,) = kernel.allocate_region(
        "io", PageType.PAGE_CACHE, 64, [1], dirty=True
    )
    channel.vmm_publish_hot([dirty_io.extent_id, 99999])
    cost = policy._guest_migrate(channel)
    # Dirty I/O and dead ids were rejected before any move was paid for.
    assert policy.pages_migrated == 0
    assert cost == 0.0


def test_interval_recorded_each_epoch(stack):
    hypervisor, domain, kernel, policy = stack
    kernel.begin_epoch(0)
    policy.on_epoch_end(0)
    kernel.begin_epoch(1)
    policy.on_epoch_end(1)
    assert len(policy.intervals_ms) == 2
    assert all(50.0 <= v <= 1000.0 for v in policy.intervals_ms)


def test_vmm_exclusive_full_cycle_with_stack():
    """VMM-exclusive promotes hot extents through scan->migrate."""
    from repro.core.baselines import VmmExclusivePolicy

    hypervisor = Hypervisor(
        {
            NodeTier.FAST: DRAM.with_capacity(16 * MIB),
            NodeTier.SLOW: NVM_PCM.with_capacity(128 * MIB),
        },
        sharing_policy=MaxMinSharing(),
    )
    domain = hypervisor.create_domain(
        "vm",
        {
            NodeTier.FAST: TierReservation(4096, 4096),
            NodeTier.SLOW: TierReservation(32768, 32768),
        },
    )
    kernel = GuestKernel(
        hypervisor.build_guest_nodes(domain), cpus=2,
        balloon=hypervisor.make_balloon_frontend(domain),
    )
    hypervisor.attach_kernel(domain, kernel)
    policy = VmmExclusivePolicy(scan_interval_epochs=1)
    policy.bind(
        PolicyBinding(kernel=kernel, hypervisor=hypervisor, domain=domain)
    )
    kernel.begin_epoch(0)
    kernel.allocate_region(
        "hot", PageType.HEAP, 512, policy.node_preference(PageType.HEAP)
    )
    for epoch in range(10):
        kernel.begin_epoch(epoch)
        kernel.touch_region("hot", 512 * 50.0)
        policy.on_epoch_end(epoch)
    assert policy.pages_migrated >= 512
    placements = {e.node_id for e in kernel.region_extents("hot")}
    assert placements & set(kernel.fast_node_ids)
