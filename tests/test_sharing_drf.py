"""Multi-VM sharing: max-min baseline and weighted DRF."""

import pytest

from repro.guestos.balloon import TierReservation
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.units import MIB
from repro.vmm.domain import Domain
from repro.vmm.drf import WeightedDrf
from repro.vmm.machine import MachineMemory
from repro.vmm.sharing import MaxMinSharing


def make_machine(fast_pages=1000, slow_pages=4000) -> MachineMemory:
    machine = MachineMemory(
        {
            NodeTier.FAST: DRAM.with_capacity(fast_pages * 4096),
            NodeTier.SLOW: NVM_PCM.with_capacity(slow_pages * 4096),
        }
    )
    return machine


def make_domain(domain_id, fast=(250, 500), slow=(1000, 2000)) -> Domain:
    return Domain(
        domain_id=domain_id,
        name=f"vm{domain_id}",
        reservations={
            NodeTier.FAST: TierReservation(*fast),
            NodeTier.SLOW: TierReservation(*slow),
        },
    )


def boot(machine, domain):
    """Grant the boot minimums."""
    for tier in (NodeTier.FAST, NodeTier.SLOW):
        pages = domain.reservations[tier].min_pages
        domain.record_grant(tier, machine.allocate(tier, pages))


# ----------------------------------------------------------------------
# Max-min
# ----------------------------------------------------------------------

def test_maxmin_grants_from_pool_when_available():
    machine = make_machine()
    a, b = make_domain(1), make_domain(2)
    boot(machine, a)
    boot(machine, b)
    decision = MaxMinSharing().arbitrate(a, NodeTier.SLOW, 500, machine, [a, b])
    assert decision.granted_from_pool == 500
    assert not decision.reclaims


def test_maxmin_protects_only_the_fast_tier():
    machine = make_machine()
    a, b = make_domain(1), make_domain(2)
    boot(machine, a)
    boot(machine, b)
    policy = MaxMinSharing(protected_tier=NodeTier.FAST)
    # FastMem requests are capped at the fair share (500 of 1000).
    decision = policy.arbitrate(a, NodeTier.FAST, 600, machine, [a, b])
    assert decision.total_pages <= 500 - a.pages(NodeTier.FAST) + 250
    # SlowMem requests scavenge the neighbour once the pool is dry.
    machine.allocate(NodeTier.SLOW, machine.free_pages(NodeTier.SLOW))
    decision = policy.arbitrate(a, NodeTier.SLOW, 800, machine, [a, b])
    assert decision.granted_from_pool == 0
    assert decision.reclaims
    assert decision.reclaims[0].victim is b


def test_maxmin_fast_request_within_fair_share_granted():
    machine = make_machine()
    a, b = make_domain(1), make_domain(2)
    boot(machine, a)
    boot(machine, b)
    decision = MaxMinSharing().arbitrate(a, NodeTier.FAST, 100, machine, [a, b])
    assert decision.granted_from_pool == 100


# ----------------------------------------------------------------------
# Weighted DRF (Algorithm 1)
# ----------------------------------------------------------------------

def test_drf_dominant_shares():
    machine = make_machine()
    modest, hungry = make_domain(1), make_domain(2, fast=(750, 750))
    boot(machine, modest)
    boot(machine, hungry)
    shares = WeightedDrf().dominant_shares(machine, [modest, hungry])
    assert shares[hungry.domain_id] > shares[modest.domain_id]


def test_drf_grants_pool_first():
    machine = make_machine()
    a, b = make_domain(1), make_domain(2)
    boot(machine, a)
    boot(machine, b)
    decision = WeightedDrf().arbitrate(a, NodeTier.SLOW, 500, machine, [a, b])
    assert decision.granted_from_pool == 500


def test_drf_reclaims_overcommit_from_higher_share_domain():
    machine = make_machine()
    modest = make_domain(1)
    hungry = make_domain(2, fast=(750, 750))
    boot(machine, modest)
    boot(machine, hungry)
    # The hungry domain balloons all remaining SlowMem (overcommit).
    spare = machine.free_pages(NodeTier.SLOW)
    hungry.record_grant(NodeTier.SLOW, machine.allocate(NodeTier.SLOW, spare))
    decision = WeightedDrf().arbitrate(
        modest, NodeTier.SLOW, 500, machine, [modest, hungry]
    )
    assert decision.granted_from_pool == 0
    assert decision.reclaims
    assert decision.reclaims[0].victim is hungry
    assert decision.total_pages == 500


def test_drf_never_reclaims_reserved_minimum():
    machine = make_machine()
    modest = make_domain(1)
    hungry = make_domain(2, fast=(750, 750))
    boot(machine, modest)
    boot(machine, hungry)
    machine.allocate(NodeTier.SLOW, machine.free_pages(NodeTier.SLOW))
    # Hungry has no overcommit: nothing to reclaim, request denied.
    decision = WeightedDrf().arbitrate(
        modest, NodeTier.SLOW, 500, machine, [modest, hungry]
    )
    assert decision.total_pages == 0


def test_drf_denies_highest_share_requester():
    """A domain with the highest dominant share cannot reclaim from
    lower-share neighbours (the queue ordering of Algorithm 1)."""
    machine = make_machine()
    modest = make_domain(1)
    hungry = make_domain(2, fast=(750, 750))
    boot(machine, modest)
    boot(machine, hungry)
    spare = machine.free_pages(NodeTier.SLOW)
    modest.record_grant(NodeTier.SLOW, machine.allocate(NodeTier.SLOW, spare))
    decision = WeightedDrf().arbitrate(
        hungry, NodeTier.SLOW, 500, machine, [modest, hungry]
    )
    # modest's share is lower than hungry's: no reclaim allowed.
    assert decision.total_pages == 0


def test_drf_strategy_proofness_lying_raises_own_share():
    """Inflating one's FastMem holdings only raises the liar's dominant
    share, making it the preferred reclaim victim — no benefit from
    lying (Section 4.3)."""
    machine = make_machine()
    honest = make_domain(1)
    liar = make_domain(2, fast=(250, 750))
    boot(machine, honest)
    boot(machine, liar)
    drf = WeightedDrf()
    before = drf.dominant_shares(machine, [honest, liar])[liar.domain_id]
    # The liar balloons extra FastMem it does not need.
    liar.record_grant(NodeTier.FAST, machine.allocate(NodeTier.FAST, 400))
    after = drf.dominant_shares(machine, [honest, liar])[liar.domain_id]
    assert after > before
    # And that surplus is exactly what DRF will reclaim for others.
    machine.allocate(NodeTier.FAST, machine.free_pages(NodeTier.FAST))
    decision = drf.arbitrate(honest, NodeTier.FAST, 300, machine, [honest, liar])
    assert sum(r.pages for r in decision.reclaims) == 300
    assert decision.reclaims[0].victim is liar
