"""heterolint: one positive + one negative fixture per rule, plus
suppression, JSON output, registry, and CLI coverage."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.devtools import lint as lint_module
from repro.devtools.lint import (
    Finding,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.errors import LintError


def rule_hits(source, relpath="src/repro/sim/snippet.py", rule_id=None):
    report = lint_source(source, relpath=relpath)
    if rule_id is None:
        return report.findings
    return [f for f in report.findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# unseeded-random
# ----------------------------------------------------------------------


def test_unseeded_random_flags_global_rng():
    src = "import random\nx = random.random()\n"
    assert rule_hits(src, rule_id="unseeded-random")


def test_unseeded_random_flags_unseeded_instance_and_wall_clock():
    src = "import random, time\nr = random.Random()\nt = time.time()\n"
    hits = rule_hits(src, rule_id="unseeded-random")
    assert len(hits) == 2


def test_unseeded_random_allows_seeded_instance():
    src = "import random\nr = random.Random(7)\ny = r.random()\n"
    assert not rule_hits(src, rule_id="unseeded-random")


def test_unseeded_random_sees_through_module_alias():
    src = "import random as rnd\nx = rnd.random()\nr = rnd.Random()\n"
    assert len(rule_hits(src, rule_id="unseeded-random")) == 2


def test_unseeded_random_flags_from_imports():
    src = (
        "from random import randint, shuffle as mix\n"
        "from time import monotonic\n"
        "x = randint(0, 9)\n"
        "mix([1, 2])\n"
        "t = monotonic()\n"
    )
    assert len(rule_hits(src, rule_id="unseeded-random")) == 3


def test_unseeded_random_flags_from_imported_bare_random_class():
    src = "from random import Random\nr = Random()\nok = Random(7)\n"
    hits = rule_hits(src, rule_id="unseeded-random")
    assert len(hits) == 1
    assert hits[0].line == 2


def test_unseeded_random_descends_into_comprehensions_and_lambdas():
    src = (
        "import random\n"
        "xs = [random.random() for _ in range(4)]\n"
        "key = lambda item: random.gauss(0.0, 1.0)\n"
    )
    assert len(rule_hits(src, rule_id="unseeded-random")) == 2


def test_unseeded_random_ignores_unrelated_names():
    src = (
        "import numpy.random as nprand\n"
        "from mylib import randint\n"
        "x = nprand.random()\n"
        "y = randint(3)\n"
    )
    assert not rule_hits(src, rule_id="unseeded-random")


# ----------------------------------------------------------------------
# foreign-raise
# ----------------------------------------------------------------------


def test_foreign_raise_flags_builtin_exception():
    src = "def f():\n    raise RuntimeError('boom')\n"
    assert rule_hits(src, rule_id="foreign-raise")


def test_foreign_raise_allows_repro_errors_and_reraise():
    src = (
        "from repro.errors import AllocationError\n"
        "def f():\n"
        "    try:\n"
        "        raise AllocationError('x')\n"
        "    except AllocationError as err:\n"
        "        raise\n"
    )
    assert not rule_hits(src, rule_id="foreign-raise")


def test_foreign_raise_allows_units_style_validation_allowlist():
    src = "def f(n):\n    raise ValueError('bad')\n"
    assert rule_hits(src, relpath="src/repro/sim/x.py", rule_id="foreign-raise")
    assert not rule_hits(src, relpath="src/repro/units.py", rule_id="foreign-raise")


def test_foreign_raise_allows_local_reproerror_subclass():
    src = (
        "from repro.errors import ReproError\n"
        "class LocalError(ReproError):\n"
        "    pass\n"
        "class DeeperError(LocalError):\n"
        "    pass\n"
        "def f():\n"
        "    raise DeeperError('x')\n"
    )
    assert not rule_hits(src, rule_id="foreign-raise")


# ----------------------------------------------------------------------
# magic-number
# ----------------------------------------------------------------------


def test_magic_number_flags_byte_constants():
    src = "CAPACITY = 4096\nCHUNK = 1024\n"
    assert len(rule_hits(src, rule_id="magic-number")) == 2


def test_magic_number_allows_page_count_idiom_and_units_py():
    src = "batch = 64 * 1024\nshift = 1 << 1024\n"
    assert not rule_hits(src, rule_id="magic-number")
    assert not rule_hits(
        "KIB = 1024\nPAGE_SIZE = 4096\n",
        relpath="src/repro/units.py",
        rule_id="magic-number",
    )


# ----------------------------------------------------------------------
# float-time-eq
# ----------------------------------------------------------------------


def test_float_time_eq_flags_equality_on_time_values():
    src = "def f(a_ns, b):\n    return a_ns == b\n"
    assert rule_hits(src, rule_id="float-time-eq")


def test_float_time_eq_allows_ordering():
    src = "def f(a_ns, b_ns):\n    return a_ns < b_ns or a_ns >= b_ns\n"
    assert not rule_hits(src, rule_id="float-time-eq")


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------


def test_mutable_default_flags_literal_and_constructor():
    src = "def f(x=[], y=dict()):\n    return x, y\n"
    assert len(rule_hits(src, rule_id="mutable-default")) == 2


def test_mutable_default_allows_none():
    src = "def f(x=None, y=()):\n    return x, y\n"
    assert not rule_hits(src, rule_id="mutable-default")


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------


def test_bare_except_flagged():
    src = "try:\n    pass\nexcept:\n    pass\n"
    assert rule_hits(src, rule_id="bare-except")


def test_typed_except_allowed():
    src = "try:\n    pass\nexcept ValueError:\n    pass\n"
    assert not rule_hits(src, rule_id="bare-except")


# ----------------------------------------------------------------------
# swallowed-repro-error
# ----------------------------------------------------------------------


def test_swallowed_repro_error_flags_empty_handler():
    src = "try:\n    f()\nexcept AllocationError:\n    pass\n"
    assert rule_hits(src, rule_id="swallowed-repro-error")


def test_swallowed_repro_error_flags_tuple_and_ellipsis():
    src = "try:\n    f()\nexcept (ValueError, MigrationError):\n    ...\n"
    hits = rule_hits(src, rule_id="swallowed-repro-error")
    assert hits and "MigrationError" in hits[0].message


def test_swallowed_repro_error_allows_handled_degradation():
    # A handler that accounts, falls back, or continues a loop is a
    # degradation, not a swallow.
    src = (
        "for item in items:\n"
        "    try:\n"
        "        f(item)\n"
        "    except AllocationError:\n"
        "        continue\n"
        "try:\n"
        "    g()\n"
        "except AllocationError:\n"
        "    cost += 1\n"
    )
    assert not rule_hits(src, rule_id="swallowed-repro-error")


def test_swallowed_repro_error_ignores_foreign_exceptions():
    src = "try:\n    f()\nexcept KeyError:\n    pass\n"
    assert not rule_hits(src, rule_id="swallowed-repro-error")


def test_swallowed_repro_error_suppressible():
    src = (
        "try:\n    f()\n"
        "except AllocationError:  "
        "# heterolint: disable=swallowed-repro-error\n    pass\n"
    )
    report = lint_source(src, relpath="src/repro/sim/snippet.py")
    assert not [
        f for f in report.findings if f.rule_id == "swallowed-repro-error"
    ]
    assert [
        f for f in report.suppressed if f.rule_id == "swallowed-repro-error"
    ]


# ----------------------------------------------------------------------
# layer-import
# ----------------------------------------------------------------------


def test_layer_import_flags_upward_import():
    src = "from repro.guestos.kernel import GuestKernel\n"
    assert rule_hits(src, relpath="src/repro/hw/bad.py", rule_id="layer-import")


def test_layer_import_flags_sibling_import():
    src = "import repro.workloads.base\n"
    assert rule_hits(
        src, relpath="src/repro/guestos/bad.py", rule_id="layer-import"
    )


def test_layer_import_allows_downward_and_type_checking():
    src = (
        "from typing import TYPE_CHECKING\n"
        "from repro.mem.frames import FrameRange\n"
        "if TYPE_CHECKING:\n"
        "    from repro.vmm.migration import MigrationEngine\n"
    )
    assert not rule_hits(
        src, relpath="src/repro/guestos/good.py", rule_id="layer-import"
    )


# ----------------------------------------------------------------------
# unordered-placement
# ----------------------------------------------------------------------


def test_unordered_placement_flags_max_over_dict_view():
    src = "def pick(ratios):\n    return max(ratios.items())\n"
    assert rule_hits(
        src, relpath="src/repro/core/bad.py", rule_id="unordered-placement"
    )


def test_unordered_placement_flags_dict_loop_with_break():
    src = (
        "def pick(extents):\n"
        "    for extent in extents.values():\n"
        "        if extent.hot:\n"
        "            break\n"
    )
    assert rule_hits(
        src, relpath="src/repro/vmm/bad.py", rule_id="unordered-placement"
    )


def test_unordered_placement_allows_sorted_and_other_layers():
    sorted_src = (
        "def pick(ratios):\n"
        "    return max(sorted(ratios.items()), key=lambda kv: kv[1])\n"
    )
    assert not rule_hits(
        sorted_src, relpath="src/repro/core/good.py",
        rule_id="unordered-placement",
    )
    loop_src = "def f(d):\n    return max(d.items())\n"
    assert not rule_hits(
        loop_src, relpath="src/repro/sim/fine.py",
        rule_id="unordered-placement",
    )


# ----------------------------------------------------------------------
# no-print
# ----------------------------------------------------------------------


def test_no_print_flags_library_code():
    src = "def f(x):\n    print(x)\n    return x\n"
    hits = rule_hits(src, rule_id="no-print")
    assert len(hits) == 1
    assert hits[0].line == 2


def test_no_print_exempts_cli_package():
    src = "def report(msg):\n    print(msg)\n"
    assert not rule_hits(
        src, relpath="src/repro/cli.py", rule_id="no-print"
    )
    assert not rule_hits(
        src, relpath="src/repro/__main__.py", rule_id="no-print"
    )


def test_no_print_suppressible():
    src = "print('debug')  # heterolint: disable=no-print\n"
    report = lint_source(src, relpath="src/repro/sim/s.py")
    assert not [f for f in report.findings if f.rule_id == "no-print"]
    assert any(s.rule_id == "no-print" for s in report.suppressed)


def test_no_print_ignores_shadowed_name():
    src = "def f(print):\n    return print\n"
    assert not rule_hits(src, rule_id="no-print")


# ----------------------------------------------------------------------
# numpy-import
# ----------------------------------------------------------------------


def test_numpy_import_flags_plain_and_from_imports():
    src = (
        "import numpy\n"
        "import numpy as np\n"
        "from numpy import frombuffer\n"
        "from numpy.linalg import norm\n"
        "import numpy.random\n"
    )
    assert len(rule_hits(src, rule_id="numpy-import")) == 5


def test_numpy_import_allowed_only_in_sim_fast():
    src = "try:\n    import numpy as _np\nexcept ImportError:\n    _np = None\n"
    assert not rule_hits(
        src, relpath="src/repro/sim/fast.py", rule_id="numpy-import"
    )
    assert rule_hits(
        src, relpath="src/repro/sim/engine.py", rule_id="numpy-import"
    )


def test_numpy_import_ignores_lookalike_modules():
    src = "import numpy_financial\nfrom numpystubs import x\n"
    assert not rule_hits(src, rule_id="numpy-import")


# ----------------------------------------------------------------------
# metrics-confinement
# ----------------------------------------------------------------------


def test_metrics_confinement_flags_import_outside_allowlist():
    src = "from repro.obs.metrics import MetricsRegistry\n"
    hits = rule_hits(
        src, relpath="src/repro/core/policy.py",
        rule_id="metrics-confinement",
    )
    assert len(hits) == 1
    assert "sim/parallel.py" in hits[0].message


def test_metrics_confinement_flags_plain_and_reexport_imports():
    src = (
        "import repro.obs.flight\n"
        "from repro.obs import SweepRecorder\n"
    )
    hits = rule_hits(
        src, relpath="src/repro/experiments/sweep.py",
        rule_id="metrics-confinement",
    )
    assert [f.line for f in hits] == [1, 2]


def test_metrics_confinement_allows_harness_and_obs_itself():
    src = "from repro.obs.flight import SweepRecorder\n"
    for relpath in (
        "src/repro/sim/parallel.py",
        "src/repro/cli.py",
        "src/repro/obs/flight.py",
        "src/repro/obs/__init__.py",
    ):
        assert not rule_hits(
            src, relpath=relpath, rule_id="metrics-confinement"
        ), relpath


def test_metrics_confinement_ignores_non_metrics_obs_imports():
    # Telemetry and sinks are fair game everywhere obs is importable;
    # only the host-metrics surface is confined.
    src = "from repro.obs import Telemetry, JsonlSink\n"
    assert not rule_hits(
        src, relpath="src/repro/experiments/sweep.py",
        rule_id="metrics-confinement",
    )


def test_metrics_confinement_does_not_mistake_jobs_for_obs():
    src = "from repro.obs.metrics import Counter\n"
    hits = rule_hits(
        src, relpath="src/repro/jobs/runner.py",
        rule_id="metrics-confinement",
    )
    assert len(hits) == 1  # "jobs/" is not "obs/"


def test_metrics_confinement_allows_serve_package():
    # The daemon mounts the registry on /metrics and labels its own
    # serve-side series; the whole package is part of the metrics plane.
    src = "from repro.obs.metrics import MetricsRegistry\n"
    for relpath in (
        "src/repro/serve/server.py",
        "src/repro/serve/__init__.py",
    ):
        assert not rule_hits(
            src, relpath=relpath, rule_id="metrics-confinement"
        ), relpath


# ----------------------------------------------------------------------
# serve-confinement
# ----------------------------------------------------------------------


def test_serve_confinement_flags_http_outside_serve():
    src = (
        "import http.server\n"
        "import socketserver\n"
        "from http.server import BaseHTTPRequestHandler\n"
    )
    hits = rule_hits(
        src, relpath="src/repro/sim/parallel.py",
        rule_id="serve-confinement",
    )
    assert [f.line for f in hits] == [1, 2, 3]


def test_serve_confinement_allows_serve_package():
    src = (
        "import socketserver\n"
        "from http.server import ThreadingHTTPServer\n"
    )
    assert not rule_hits(
        src, relpath="src/repro/serve/server.py",
        rule_id="serve-confinement",
    )


def test_serve_confinement_ignores_http_client_lookalikes():
    # Only the server-side stdlib modules are confined; generic net
    # modules and a local package named "httputil" are fair game.
    src = "import httputil\nimport json\n"
    assert not rule_hits(
        src, relpath="src/repro/cli.py", rule_id="serve-confinement"
    )


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_line_suppression():
    src = "x = 4096  # heterolint: disable=magic-number\n"
    report = lint_source(src, relpath="src/repro/sim/s.py")
    assert not report.findings
    assert len(report.suppressed) == 1


def test_disable_next_line_suppression():
    src = (
        "# heterolint: disable-next-line=magic-number\n"
        "x = 4096\n"
        "y = 4096\n"
    )
    report = lint_source(src, relpath="src/repro/sim/s.py")
    assert [f.line for f in report.findings] == [3]
    assert [f.line for f in report.suppressed] == [2]


def test_file_suppression_and_all_wildcard():
    src = (
        "# heterolint: disable-file=magic-number\n"
        "x = 4096\n"
        "try:\n"
        "    pass\n"
        "except:  # heterolint: disable=all\n"
        "    pass\n"
    )
    report = lint_source(src, relpath="src/repro/sim/s.py")
    assert not report.findings
    assert len(report.suppressed) == 2


# ----------------------------------------------------------------------
# Output formats + runner
# ----------------------------------------------------------------------


def test_json_output_round_trips():
    report = lint_source("x = 4096\n", relpath="src/repro/sim/s.py")
    payload = json.loads(report.to_json())
    assert payload["finding_count"] == 1
    assert payload["findings"][0]["rule"] == "magic-number"
    assert payload["findings"][0]["line"] == 1
    assert "4096" in payload["findings"][0]["message"]


def test_human_output_has_location_and_summary():
    report = lint_source("x = 4096\n", relpath="src/repro/sim/s.py")
    text = report.format_human()
    assert "src/repro/sim/s.py:1:" in text
    assert "finding(s)" in text


def test_parse_error_becomes_finding():
    report = lint_source("def broken(:\n", relpath="src/repro/sim/s.py")
    assert report.findings[0].rule_id == "parse-error"


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "repro" / "hw"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("x = 4096\n")
    (pkg / "good.py").write_text("x = 1\n")
    report = lint_paths([tmp_path])
    assert report.files_checked == 2
    assert [f.rule_id for f in report.findings] == ["magic-number"]


def test_lint_paths_missing_path_raises():
    with pytest.raises(LintError):
        lint_paths(["/no/such/heterolint/path"])


def test_unknown_rule_id_raises():
    with pytest.raises(LintError):
        lint_source("x = 1\n", rule_ids=["no-such-rule"])


# ----------------------------------------------------------------------
# Registry pluggability
# ----------------------------------------------------------------------


def test_registry_rejects_duplicates_and_accepts_plugins():
    assert len(all_rules()) >= 8

    class NoTodoRule(Rule):
        rule_id = "no-todo"
        rationale = "test plugin"

        def check(self, ctx):
            for lineno, line in enumerate(ctx.source.splitlines(), start=1):
                if "TODO" in line:
                    yield Finding(
                        self.rule_id, ctx.relpath, lineno, 0, "todo found"
                    )

    register(NoTodoRule)
    try:
        with pytest.raises(LintError):
            register(NoTodoRule)  # duplicate id
        report = lint_source("# TODO: later\n", rule_ids=["no-todo"])
        assert [f.rule_id for f in report.findings] == ["no-todo"]
    finally:
        lint_module._REGISTRY.pop("no-todo", None)


def test_rule_without_id_rejected():
    class Nameless(Rule):
        pass

    with pytest.raises(LintError):
        register(Nameless)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_lint_clean_and_dirty(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    capsys.readouterr()

    dirty = tmp_path / "dirty.py"
    dirty.write_text("x = 4096\n")
    assert main(["lint", str(dirty)]) == 1
    assert "magic-number" in capsys.readouterr().out


def test_cli_lint_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("x = 4096\n")
    assert main(["lint", str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["finding_count"] == 1


def test_cli_lint_unknown_rule_is_usage_error(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("x = 1\n")
    assert main(["lint", str(target), "--rules", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rules():
        assert rule_id in out
