"""End-to-end integration: the paper's headline behaviours on scaled-down
platforms (fast enough for the unit-test suite)."""

import pytest

from repro import gain_percent, run_experiment
from repro.config import SimConfig
from repro.core import make_policy
from repro.hw.cache import CacheConfig
from repro.mem.extent import PageType
from repro.sim.engine import SimulationEngine
from repro.units import GIB, MIB
from repro.workloads.base import ChurnSpec, RegionSpec, StatisticalWorkload


def scaled_workload() -> StatisticalWorkload:
    """A miniature GraphChi-like app: hot set + cold heap + I/O churn."""
    return StatisticalWorkload(
        name="mini",
        mlp=8.0,
        instructions_per_epoch=20e6,
        accesses_per_epoch=600_000.0,
        resident=[
            RegionSpec("hot", PageType.HEAP, 24_000, 0.85, 40.0),
            RegionSpec("cold", PageType.HEAP, 60_000, 0.3, 8.0),
        ],
        churn=[
            ChurnSpec("shard", PageType.HEAP, 3000, 2, 0.5, 25.0,
                      active_epochs=2),
            ChurnSpec("io", PageType.PAGE_CACHE, 2000, 3, 0.3, 20.0,
                      active_epochs=1),
            ChurnSpec("slab", PageType.SLAB, 300, 1, 0.5, 5.0),
        ],
        run_epochs=40,
    )


def scaled_config(fast_mib=128) -> SimConfig:
    return SimConfig(
        fast_capacity_bytes=fast_mib * MIB,
        slow_capacity_bytes=512 * MIB,
        llc=CacheConfig(capacity_bytes=2 * MIB),
    )


def run(policy_name, fast_mib=128, epochs=40):
    engine = SimulationEngine(
        scaled_config(fast_mib), scaled_workload(), make_policy(policy_name)
    )
    return engine.run(epochs)


@pytest.fixture(scope="module")
def results():
    return {
        name: run(name)
        for name in (
            "slowmem-only",
            "heap-od",
            "heap-io-slab-od",
            "hetero-lru",
            "hetero-coordinated",
            "numa-preferred",
            "vmm-exclusive",
        )
    }


def test_slowmem_is_the_floor(results):
    floor = results["slowmem-only"].stats.runtime_ns
    for name, result in results.items():
        assert result.stats.runtime_ns <= floor * 1.05, name


def test_mechanism_ladder_is_monotone(results):
    ladder = ["heap-od", "heap-io-slab-od", "hetero-lru"]
    runtimes = [results[name].stats.runtime_ns for name in ladder]
    for faster, slower in zip(runtimes[1:], runtimes):
        assert faster <= slower * 1.05


def test_coordinated_close_to_or_better_than_lru(results):
    # On this miniature platform epochs are tiny, so the fixed scan cost
    # is a larger fraction of runtime than on the paper-scale platform;
    # coordinated must still stay within ~15% of guest-only HeteroOS-LRU.
    assert (
        results["hetero-coordinated"].stats.runtime_ns
        <= results["hetero-lru"].stats.runtime_ns * 1.15
    )


def test_io_prioritization_beats_heap_only(results):
    gain_io = gain_percent(results["heap-io-slab-od"], results["slowmem-only"])
    gain_heap = gain_percent(results["heap-od"], results["slowmem-only"])
    assert gain_io >= gain_heap - 2


def test_vmm_exclusive_trails_heteroos(results):
    assert (
        results["vmm-exclusive"].stats.runtime_ns
        >= results["hetero-lru"].stats.runtime_ns
    )


def test_heteroos_policies_serve_more_fast_allocations(results):
    assert (
        results["hetero-lru"].fastmem_miss_ratio()
        <= results["numa-preferred"].fastmem_miss_ratio() + 0.02
    )


def test_public_api_quickstart_shape():
    """The README quickstart runs and produces a positive gain."""
    slow = run_experiment("nginx", "slowmem-only", fast_ratio=0.25, epochs=10)
    het = run_experiment("nginx", "hetero-lru", fast_ratio=0.25, epochs=10)
    assert gain_percent(het, slow) >= 0.0
