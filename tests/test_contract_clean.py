"""Meta-tests: the shipped tree passes ``repro lint --contracts``
clean with zero unbaselined findings, and the combined SARIF log grows
a fifth ``heterocontract`` tool run that still validates against the
SARIF 2.1.0 schema subset pinned in test_devtools_flow.py.

The clean-tree pin is the contract checker's own contract: every
declared exclusion (``NON_ADDITIVE_FIELDS``, ``UNSAMPLED_AGGREGATES``,
``CACHE_KEY_EXCLUDED``, ``UNREGISTERED_FACTORIES``) is exactly
sufficient — an entry going stale or a new drift both break this test
before they break a paper figure.
"""

from __future__ import annotations

import pathlib

import repro
from repro.devtools.flow import (
    combined_rule_metadata,
    deep_lint_paths,
    report_to_sarif,
)
from repro.devtools.lint import Finding

from test_devtools_flow import _validate_sarif

PACKAGE_DIR = pathlib.Path(repro.__file__).parent


def test_shipped_tree_has_zero_contract_findings():
    report, index = deep_lint_paths(
        [PACKAGE_DIR],
        include_shallow=False,
        include_deep=False,
        include_contracts=True,
    )
    assert index.files_indexed >= 80
    assert report.findings == [], "\n" + report.format_human()


def test_sarif_gains_fifth_heterocontract_run():
    report, _index = deep_lint_paths(
        [PACKAGE_DIR],
        include_shallow=False,
        include_deep=False,
        include_contracts=True,
    )
    # The shipped tree is clean, so pin the five-run shape with one
    # synthetic finding per namespace (the dispatch is prefix-based).
    for rule_id in (
        "magic-number",
        "flow-dim-mix",
        "san-double-allocate",
        "effect-shared-write",
        "contract-spec-field",
    ):
        report.findings.append(
            Finding(
                rule_id=rule_id,
                path="src/repro/sim/parallel.py",
                line=1,
                col=0,
                message=f"synthetic {rule_id} finding",
            )
        )
    payload = report_to_sarif(report, combined_rule_metadata())
    _validate_sarif(payload)
    by_name = {run["tool"]["driver"]["name"]: run for run in payload["runs"]}
    assert set(by_name) == {
        "heterolint", "heteroflow", "framesan", "heteroeffect",
        "heterocontract",
    }
    contract_run = by_name["heterocontract"]
    assert [r["ruleId"] for r in contract_run["results"]] == [
        "contract-spec-field"
    ]
    # The rule table carries the real rationale, not an id echo.
    for rule in contract_run["tool"]["driver"]["rules"]:
        assert rule["shortDescription"]["text"] != rule["id"]
