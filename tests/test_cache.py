"""Analytic LLC model."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.cache import CacheConfig, LastLevelCache, RegionAccess
from repro.units import MIB


def region(
    rid="r", mib=32, reads=1000.0, writes=0.0, reuse=1.0, bpm=64.0
) -> RegionAccess:
    return RegionAccess(
        region_id=rid,
        footprint_bytes=mib * MIB,
        reads=reads,
        writes=writes,
        reuse=reuse,
        bytes_per_miss=bpm,
    )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CacheConfig(capacity_bytes=0)
    with pytest.raises(ConfigurationError):
        CacheConfig(line_size=0)


def test_region_validation():
    with pytest.raises(ConfigurationError):
        region(reuse=1.5)
    with pytest.raises(ConfigurationError):
        region(reads=-1)


def test_fully_cached_high_reuse_region_mostly_hits():
    cache = LastLevelCache(CacheConfig(capacity_bytes=64 * MIB))
    (result,) = cache.apportion([region(mib=16, reuse=1.0)])
    assert result.cached_fraction == 1.0
    assert result.misses == pytest.approx(0.0)


def test_streaming_region_misses_even_when_cached():
    cache = LastLevelCache(CacheConfig(capacity_bytes=64 * MIB))
    (result,) = cache.apportion([region(mib=16, reuse=0.0)])
    assert result.cached_fraction == 1.0
    assert result.misses == pytest.approx(1000.0)


def test_oversized_region_partially_cached():
    cache = LastLevelCache(CacheConfig(capacity_bytes=16 * MIB))
    (result,) = cache.apportion([region(mib=64, reuse=1.0)])
    assert result.cached_fraction == pytest.approx(0.25)
    assert result.misses == pytest.approx(750.0)


def test_denser_region_wins_capacity():
    cache = LastLevelCache(CacheConfig(capacity_bytes=16 * MIB))
    hot = region(rid="hot", mib=16, reads=1_000_000, reuse=1.0)
    cold = region(rid="cold", mib=16, reads=10, reuse=1.0)
    results = {r.region_id: r for r in cache.apportion([cold, hot])}
    assert results["hot"].cached_fraction == 1.0
    assert results["cold"].cached_fraction == 0.0


def test_result_order_matches_input_order():
    cache = LastLevelCache()
    results = cache.apportion(
        [region(rid="a"), region(rid="b"), region(rid="c")]
    )
    assert [r.region_id for r in results] == ["a", "b", "c"]


def test_zero_access_region_gets_no_capacity():
    cache = LastLevelCache(CacheConfig(capacity_bytes=16 * MIB))
    idle = region(rid="idle", mib=8, reads=0.0)
    busy = region(rid="busy", mib=16, reads=100.0, reuse=1.0)
    results = {r.region_id: r for r in cache.apportion([idle, busy])}
    assert results["busy"].cached_fraction == 1.0
    assert results["idle"].misses == 0.0


def test_write_misses_generate_writeback_traffic():
    cache = LastLevelCache(CacheConfig(capacity_bytes=1 * MIB))
    reads_only = cache.apportion([region(mib=512, reads=1000, writes=0)])[0]
    writes_only = cache.apportion([region(mib=512, reads=0, writes=1000)])[0]
    # A dirty miss costs the fill plus the eviction writeback.
    assert writes_only.traffic_bytes == pytest.approx(
        2 * reads_only.traffic_bytes, rel=0.01
    )


def test_bytes_per_miss_scales_traffic():
    cache = LastLevelCache(CacheConfig(capacity_bytes=1 * MIB))
    narrow = cache.apportion([region(mib=512, bpm=64.0)])[0]
    wide = cache.apportion([region(mib=512, bpm=256.0)])[0]
    assert wide.traffic_bytes == pytest.approx(4 * narrow.traffic_bytes)


def test_mpki_helper():
    cache = LastLevelCache()
    assert cache.mpki(misses=1000, instructions=1_000_000) == 1.0
    assert cache.mpki(misses=10, instructions=0) == 0.0


def test_total_misses_conserved_across_split():
    """Splitting one region into halves cannot create or destroy misses
    when the halves inherit the same density."""
    cache = LastLevelCache(CacheConfig(capacity_bytes=8 * MIB))
    whole = cache.apportion([region(mib=32, reads=1000, reuse=0.8)])
    halves = cache.apportion(
        [
            region(rid="h1", mib=16, reads=500, reuse=0.8),
            region(rid="h2", mib=16, reads=500, reuse=0.8),
        ]
    )
    assert sum(r.misses for r in halves) == pytest.approx(
        sum(r.misses for r in whole), rel=0.01
    )
