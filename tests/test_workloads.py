"""Workload framework and the six application models."""

import pytest

from repro.errors import WorkloadError
from repro.mem.extent import PageType
from repro.workloads.base import (
    ChurnSpec,
    RegionSpec,
    StatisticalWorkload,
)
from repro.workloads.fig13 import make_graphchi_twitter, make_metis_big
from repro.workloads.microbench import make_memlat, make_stream
from repro.workloads.registry import (
    ALL_APPS,
    PLACEMENT_APPS,
    available_workloads,
    make_workload,
    register_workload,
)


def simple_workload(**overrides) -> StatisticalWorkload:
    kwargs = dict(
        name="test",
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=1000.0,
        resident=[
            RegionSpec("hot", PageType.HEAP, 100, reuse=0.8, access_share=3.0),
        ],
        churn=[
            ChurnSpec(
                "io", PageType.PAGE_CACHE, pages_per_epoch=10,
                lifetime_epochs=2, reuse=0.5, access_share=1.0,
            ),
        ],
    )
    kwargs.update(overrides)
    return StatisticalWorkload(**kwargs)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

def test_region_spec_validation():
    with pytest.raises(WorkloadError):
        RegionSpec("r", PageType.HEAP, 0, 0.5, 1.0)
    with pytest.raises(WorkloadError):
        RegionSpec("r", PageType.HEAP, 10, 1.5, 1.0)
    with pytest.raises(WorkloadError):
        RegionSpec("r", PageType.HEAP, 10, 0.5, -1.0)
    with pytest.raises(WorkloadError):
        RegionSpec("r", PageType.HEAP, 10, 0.5, 1.0, write_fraction=2.0)


def test_churn_spec_validation():
    with pytest.raises(WorkloadError):
        ChurnSpec("c", PageType.HEAP, 0, 1, 0.5, 1.0)
    with pytest.raises(WorkloadError):
        ChurnSpec("c", PageType.HEAP, 10, 2, 0.5, 1.0, active_epochs=3)


def test_workload_validation():
    with pytest.raises(WorkloadError):
        simple_workload(instructions_per_epoch=0)
    with pytest.raises(WorkloadError):
        simple_workload(mlp=0)
    with pytest.raises(WorkloadError):
        simple_workload(share_shifts=[(5, {"nonexistent": 1.0})])


# ----------------------------------------------------------------------
# Epoch stream semantics
# ----------------------------------------------------------------------

def test_residents_allocated_at_their_epoch():
    workload = simple_workload(
        resident=[
            RegionSpec("early", PageType.HEAP, 10, 0.5, 1.0, alloc_epoch=0),
            RegionSpec("late", PageType.HEAP, 10, 0.5, 1.0, alloc_epoch=3),
        ],
        churn=[],
    )
    demands = list(workload.epochs(5))
    assert any("early" in rid for rid, _ in demands[0].allocs)
    assert not any("late" in rid for rid, _ in demands[0].allocs)
    assert any("late" in rid for rid, _ in demands[3].allocs)
    # Not accessed before allocation.
    assert all("late" not in rid for rid in demands[1].accesses)


def test_churn_lifecycle():
    workload = simple_workload()
    demands = list(workload.epochs(6))
    # One churn region allocated per epoch.
    for demand in demands:
        churn_allocs = [rid for rid, s in demand.allocs if "io" in rid]
        assert len(churn_allocs) == 1
    # Regions freed exactly lifetime epochs after birth.
    born_epoch0 = [rid for rid, _ in demands[0].allocs if "io" in rid][0]
    assert born_epoch0 in demands[2].frees


def test_access_shares_sum_to_total():
    workload = simple_workload()
    for demand in workload.epochs(4):
        total = sum(r + w for r, w in demand.accesses.values())
        assert total == pytest.approx(1000.0)


def test_active_epochs_limit_churn_accesses():
    workload = simple_workload(
        churn=[
            ChurnSpec(
                "io", PageType.PAGE_CACHE, pages_per_epoch=10,
                lifetime_epochs=4, active_epochs=1, reuse=0.5,
                access_share=1.0,
            ),
        ],
    )
    demands = list(workload.epochs(4))
    stale = [rid for rid, _ in demands[0].allocs if "io" in rid][0]
    assert stale in demands[0].accesses
    assert stale not in demands[1].accesses  # lingers but unaccessed


def test_share_shift_changes_distribution():
    workload = simple_workload(
        resident=[
            RegionSpec("a", PageType.HEAP, 10, 0.5, 9.0),
            RegionSpec("b", PageType.HEAP, 10, 0.5, 1.0),
        ],
        churn=[],
        share_shifts=[(2, {"a": 1.0, "b": 9.0})],
    )
    demands = list(workload.epochs(4))
    a_before = demands[0].accesses["test:a"][0] + demands[0].accesses["test:a"][1]
    a_after = demands[3].accesses["test:a"][0] + demands[3].accesses["test:a"][1]
    assert a_before > 5 * a_after


def test_access_period_skips_epochs():
    workload = simple_workload(
        resident=[
            RegionSpec("cold", PageType.HEAP, 10, 0.5, 1.0, access_period=3),
            RegionSpec("hot", PageType.HEAP, 10, 0.5, 1.0),
        ],
        churn=[],
    )
    demands = list(workload.epochs(6))
    touched = [e for e, d in enumerate(demands) if "test:cold" in d.accesses]
    assert touched == [0, 3]


def test_write_fraction_split():
    workload = simple_workload(
        resident=[
            RegionSpec(
                "w", PageType.HEAP, 10, 0.5, 1.0, write_fraction=0.25
            ),
        ],
        churn=[],
    )
    demand = next(iter(workload.epochs(1)))
    reads, writes = demand.accesses["test:w"]
    assert writes == pytest.approx(250.0)
    assert reads == pytest.approx(750.0)


# ----------------------------------------------------------------------
# Registry and app calibration
# ----------------------------------------------------------------------

def test_registry_contents():
    assert set(ALL_APPS) == {
        "graphchi", "xstream", "metis", "leveldb", "redis", "nginx",
    }
    assert "nginx" not in PLACEMENT_APPS
    assert available_workloads() == sorted(ALL_APPS)


def test_make_workload_unknown():
    with pytest.raises(WorkloadError):
        make_workload("doom")


def test_register_custom_workload():
    register_workload("custom-test", lambda: simple_workload(name="custom"))
    assert make_workload("custom-test").name == "custom"
    with pytest.raises(WorkloadError):
        register_workload("custom-test", simple_workload)


@pytest.mark.parametrize("app", ALL_APPS)
def test_app_models_produce_consistent_streams(app):
    workload = make_workload(app)
    allocated: set[str] = set()
    freed: set[str] = set()
    for demand in workload.epochs(10):
        for region_id, spec in demand.allocs:
            assert region_id not in allocated
            allocated.add(region_id)
            assert spec.pages > 0
        for region_id in demand.frees:
            assert region_id in allocated
            assert region_id not in freed
            freed.add(region_id)
        for region_id in demand.accesses:
            assert region_id in allocated and region_id not in freed


@pytest.mark.parametrize("app", ALL_APPS)
def test_app_metrics_defined(app):
    workload = make_workload(app)
    assert workload.metric in ("seconds", "ops-per-sec", "mb-per-sec")
    if workload.metric != "seconds":
        assert workload.work_units_per_epoch > 0
    assert workload.default_epochs() >= 100


def test_fig13_variants_grow_in_stages():
    for factory in (make_graphchi_twitter, make_metis_big):
        workload = factory()
        epochs = {spec.alloc_epoch for spec in workload.resident}
        assert len(epochs) > 1


def test_microbench_wss_sizes():
    memlat = make_memlat(1.0)
    assert memlat.resident_pages == pytest.approx(262144, abs=16)
    stream = make_stream(0.5)
    assert stream.resident_pages == pytest.approx(131072, abs=16)
    with pytest.raises(WorkloadError):
        make_memlat(0)
    with pytest.raises(WorkloadError):
        make_stream(-1)
