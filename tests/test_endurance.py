"""NVM endurance accounting."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hw.endurance import (
    SECONDS_PER_YEAR,
    WearTracker,
    estimated_lifetime_years,
)
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.sim.runner import build_config, run_experiment
from repro.units import NS_PER_SEC


def test_dram_lifetime_is_unbounded():
    assert estimated_lifetime_years(DRAM, 1e12) == math.inf


def test_zero_writes_is_unbounded():
    assert estimated_lifetime_years(NVM_PCM, 0.0) == math.inf


def test_pcm_lifetime_math():
    # budget = capacity * endurance * efficiency; rate = budget/lifetime.
    rate = 1e9  # 1 GB/s of writes
    years = estimated_lifetime_years(NVM_PCM, rate, wear_leveling_efficiency=1.0)
    expected = (
        NVM_PCM.capacity_bytes * NVM_PCM.endurance_cycles / rate
    ) / SECONDS_PER_YEAR
    assert years == pytest.approx(expected)


def test_wear_leveling_efficiency_scales_lifetime():
    perfect = estimated_lifetime_years(NVM_PCM, 1e9, 1.0)
    half = estimated_lifetime_years(NVM_PCM, 1e9, 0.5)
    assert half == pytest.approx(perfect / 2)
    with pytest.raises(ConfigurationError):
        estimated_lifetime_years(NVM_PCM, 1e9, 0.0)


def test_tracker_accumulates_and_rates():
    tracker = WearTracker()
    tracker.record(NVM_PCM, 500.0)
    tracker.record(NVM_PCM, 500.0)
    tracker.record(DRAM, 100.0)
    assert tracker.write_bytes[NVM_PCM.name] == 1000.0
    assert tracker.write_rate(NVM_PCM.name, NS_PER_SEC) == pytest.approx(1000.0)
    assert tracker.write_rate("unknown", NS_PER_SEC) == 0.0
    assert tracker.lifetime_years(DRAM.name, NS_PER_SEC) == math.inf
    assert tracker.lifetime_years(NVM_PCM.name, NS_PER_SEC) < math.inf
    with pytest.raises(ConfigurationError):
        tracker.record(DRAM, -1.0)


def test_engine_reports_per_device_wear():
    config = build_config(fast_ratio=0.25, slow_device=NVM_PCM)
    result = run_experiment("redis", "slowmem-only", epochs=10, config=config)
    slow_name = config.resolved_slow_device().name
    assert result.device_write_bytes.get(slow_name, 0) > 0
    assert result.device_lifetime_years[slow_name] < math.inf


def test_placement_reduces_nvm_wear():
    """Keeping write traffic on FastMem extends the NVM's life — the
    endurance side-benefit of HeteroOS placement."""
    config_kwargs = dict(fast_ratio=0.25, slow_device=NVM_PCM)
    naive = run_experiment(
        "redis", "slowmem-only", epochs=20,
        config=build_config(**config_kwargs),
    )
    config = build_config(**config_kwargs)
    placed = run_experiment("redis", "hetero-lru", epochs=20, config=config)
    slow_name = config.resolved_slow_device().name
    assert (
        placed.device_write_bytes.get(slow_name, 0.0)
        < naive.device_write_bytes[slow_name]
    )
