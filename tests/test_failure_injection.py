"""Failure injection: the system degrades, it does not fall over."""

import pytest

from conftest import make_kernel
from repro.config import SimConfig
from repro.core import make_policy
from repro.errors import OutOfMemoryError
from repro.guestos.swap import SwapDevice
from repro.mem.extent import PageType
from repro.sim.engine import SimulationEngine
from repro.units import MIB
from repro.workloads.base import RegionSpec, StatisticalWorkload


def overcommitted_workload(pages=40_000) -> StatisticalWorkload:
    return StatisticalWorkload(
        name="overcommit",
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=10_000.0,
        resident=[
            RegionSpec("a", PageType.HEAP, pages, 0.7, 1.0),
            RegionSpec("b", PageType.HEAP, pages, 0.7, 1.0, alloc_epoch=2),
            RegionSpec("c", PageType.HEAP, pages, 0.7, 0.5, alloc_epoch=4,
                       access_period=4),
        ],
    )


def tiny_config() -> SimConfig:
    return SimConfig(
        fast_capacity_bytes=16 * MIB, slow_capacity_bytes=256 * MIB
    )


def test_overcommit_swaps_instead_of_crashing():
    engine = SimulationEngine(
        tiny_config(), overcommitted_workload(), make_policy("heap-od")
    )
    result = engine.run(8)
    assert result.swap_pages_out > 0
    engine.kernel.check_invariants()


def test_swap_device_full_drops_allocations_gracefully():
    engine = SimulationEngine(
        tiny_config(), overcommitted_workload(), make_policy("heap-od")
    )
    # Replace the swap device with a nearly-full one.
    engine.kernel.swap = SwapDevice(capacity_pages=64)
    result = engine.run(8)
    # The third region cannot fit and cannot swap: it is dropped, and
    # the run still completes with sane accounting.
    assert result.stats.dropped_allocation_pages > 0
    engine.kernel.check_invariants()


def test_shrink_node_with_full_swap_reclaims_what_it_can(kernel):
    kernel.swap = SwapDevice(capacity_pages=16)
    slow = kernel.nodes[1]
    usable = slow.free_pages_for(PageType.HEAP)
    kernel.begin_epoch(0)
    kernel.allocate_region("cold", PageType.HEAP, usable, [1])
    freed = kernel.shrink_node(1, slow.free_pages + 5000)
    # The swap device caps reclaim; no crash, partial progress only.
    assert freed <= slow.free_pages + 16
    kernel.check_invariants()


def test_touch_swapped_with_no_room_anywhere_charges_penalty(kernel):
    kernel.begin_epoch(0)
    # Fill both nodes completely.
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("fast-fill", PageType.HEAP, fast, [0])
    slow_pages = kernel.nodes[1].free_pages_for(PageType.HEAP)
    kernel.allocate_region("cold", PageType.HEAP, slow_pages, [1])
    # Swap the cold region out, then refill its space.
    kernel.shrink_node(1, kernel.nodes[1].free_pages + slow_pages)
    refill = kernel.nodes[1].free_pages_for(PageType.HEAP)
    if refill:
        kernel.allocate_region("refill", PageType.HEAP, refill, [1])
    kernel.drain_pending_cost()
    kernel.touch_region("cold", 1000.0)
    # Nothing fits: the refault penalty is charged, state stays swapped.
    assert kernel.pending_cost_ns > 0
    kernel.check_invariants()


def test_engine_oom_path_records_drops_not_exceptions():
    workload = StatisticalWorkload(
        name="monster",
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=1000.0,
        resident=[
            RegionSpec("huge", PageType.HEAP, 10**7, 0.5, 1.0),
        ],
    )
    engine = SimulationEngine(tiny_config(), workload, make_policy("heap-od"))
    result = engine.run(2)
    assert result.stats.dropped_allocation_pages > 0
    assert result.stats.epochs == 2


def test_balloonless_kernel_handles_pressure(kernel):
    # No balloon front-end at all: allocation falls through nodes only.
    assert kernel.balloon is None
    total = sum(n.free_pages_for(PageType.HEAP) for n in kernel.nodes.values())
    kernel.begin_epoch(0)
    extents = kernel.allocate_region("all", PageType.HEAP, total, [0, 1])
    assert sum(e.pages for e in extents) == total
    with pytest.raises(OutOfMemoryError):
        kernel.allocate_region("more", PageType.HEAP, 64, [0, 1])
    kernel.check_invariants()


def test_vmm_exclusive_survives_churn_heavy_free_storms():
    """Stale hot reports (freed extents) charge walks but never crash."""
    workload = StatisticalWorkload(
        name="churny",
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=100_000.0,
        resident=[],
        churn=[
            __import__("repro.workloads.base", fromlist=["ChurnSpec"]).ChurnSpec(
                "flash", PageType.HEAP, 2000, 1, 0.5, 1.0
            ),
        ],
    )
    engine = SimulationEngine(
        tiny_config(), workload, make_policy("vmm-exclusive")
    )
    result = engine.run(12)
    assert result.stats.epochs == 12
    engine.kernel.check_invariants()
