"""Matrix smoke: every policy runs every application without error.

Short runs on a scaled platform; correctness of outcomes is asserted
elsewhere — this guards against combinations that crash, leak, or
corrupt kernel state.
"""

import pytest

from repro.config import SimConfig
from repro.core import available_policies, make_policy
from repro.sim.engine import SimulationEngine
from repro.units import MIB
from repro.workloads.registry import ALL_APPS, make_workload


def small_config() -> SimConfig:
    return SimConfig(
        fast_capacity_bytes=512 * MIB,
        slow_capacity_bytes=8 * 1024 * MIB,
    )


@pytest.mark.parametrize("policy_name", sorted(available_policies()))
@pytest.mark.parametrize("app", sorted(ALL_APPS))
def test_policy_app_combination(policy_name, app):
    engine = SimulationEngine(
        small_config(), make_workload(app), make_policy(policy_name)
    )
    result = engine.run(6)
    assert result.stats.epochs == 6
    assert result.stats.runtime_ns > 0
    engine.kernel.check_invariants()


def test_numa_balancing_trails_preferred():
    """The paper's specific claim about automatic NUMA balancing."""
    from repro import gain_percent, run_experiment

    slow = run_experiment("graphchi", "slowmem-only", fast_ratio=0.25,
                          epochs=40)
    balancing = run_experiment("graphchi", "numa-balancing",
                               fast_ratio=0.25, epochs=40)
    preferred = run_experiment("graphchi", "numa-preferred",
                               fast_ratio=0.25, epochs=40)
    assert gain_percent(balancing, slow) < gain_percent(preferred, slow)
    # Some cores are bound to SlowMem: gains exist but are capped.
    assert 0 < gain_percent(balancing, slow)


def test_numa_balancing_alternates_local_nodes():
    from conftest import make_kernel
    from repro.core.baselines import NumaBalancingPolicy
    from repro.core.policy import PolicyBinding
    from repro.mem.extent import PageType

    policy = NumaBalancingPolicy()
    policy.bind(PolicyBinding(kernel=make_kernel()))
    firsts = {policy.node_preference(PageType.HEAP)[0] for _ in range(6)}
    assert firsts == {0, 1}  # allocations land node-local per CPU
    assert policy.on_epoch_end(0) > 0  # hinting faults cost something
