"""heteroeffect: per-rule bad+good fixtures with interprocedural
(callee-summary / reachability-chain) evidence, phase certification,
ledger diffing, and the ``repro certify`` CLI.

Fixture trees follow tests/test_devtools_flow.py: a ``repro``-named
root so module names normalize the same way as the real package
(``sim/parallel.py`` -> module ``sim.parallel``, the forked-worker
module the race rules anchor reachability on).
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main
from repro.devtools.effect import (
    EffectAnalysis,
    compute_ledger,
    diff_ledgers,
    effect_rule_metadata,
    ledger_json,
    worker_entry_points,
)
from repro.devtools.flow import ProjectIndex, deep_lint_paths
from repro.errors import LintError


def make_tree(tmp_path, files):
    """Write ``files`` (relpath -> source) under a repro-named root."""
    root = tmp_path / "proj" / "repro"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    for directory in {p.parent for p in root.rglob("*.py")} | {root}:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def effects(tmp_path, files, rule_id=None):
    report, _index = deep_lint_paths(
        [make_tree(tmp_path, files)],
        include_shallow=False,
        include_deep=False,
        include_effects=True,
    )
    if rule_id is None:
        return report.findings
    return [f for f in report.findings if f.rule_id == rule_id]


def build_index(tmp_path, files):
    return ProjectIndex.build([make_tree(tmp_path, files)])


# ----------------------------------------------------------------------
# effect-shared-write
# ----------------------------------------------------------------------

PARALLEL_RUNNER = """\
    from repro.sim.stats import record

    WORKER_ENTRY_POINTS = ("run_spec",)

    def run_spec(spec):
        return record(spec)
"""

SHARED_WRITE_BAD = {
    "sim/parallel.py": PARALLEL_RUNNER,
    "sim/stats.py": """\
        _MEMO = {}

        def record(spec):
            _MEMO[spec] = 1
            return _MEMO
    """,
}

SHARED_WRITE_GOOD = {
    "sim/parallel.py": PARALLEL_RUNNER,
    "sim/stats.py": """\
        def record(spec):
            memo = {}
            memo[spec] = 1
            return memo
    """,
}


def test_shared_write_fires_with_worker_chain(tmp_path):
    hits = effects(tmp_path, SHARED_WRITE_BAD, "effect-shared-write")
    assert len(hits) == 1
    finding = hits[0]
    assert finding.function == "sim.stats.record"
    assert "sim.stats:_MEMO" in finding.message
    # Interprocedural evidence: the reachability chain from the worker
    # entry point into the writing helper.
    assert "sim.parallel.run_spec -> sim.stats.record" in finding.message


def test_shared_write_clean_on_local_container(tmp_path):
    assert not effects(tmp_path, SHARED_WRITE_GOOD, "effect-shared-write")


def test_shared_write_needs_worker_reachability(tmp_path):
    # Same global write, but nothing in sim.parallel calls it.
    files = dict(SHARED_WRITE_BAD)
    files["sim/parallel.py"] = """\
        WORKER_ENTRY_POINTS = ("run_spec",)

        def run_spec(spec):
            return spec
    """
    assert not effects(tmp_path, files, "effect-shared-write")


def test_worker_entry_marker_is_honored(tmp_path):
    # A custom marker replaces the default entry-point names entirely.
    files = dict(SHARED_WRITE_BAD)
    files["sim/parallel.py"] = """\
        from repro.sim.stats import record

        WORKER_ENTRY_POINTS = ("launch",)

        def launch(spec):
            return record(spec)

        def run_spec(spec):
            return spec
    """
    index = build_index(tmp_path, files)
    assert worker_entry_points(index) == ("launch",)
    hits = effects(tmp_path, files, "effect-shared-write")
    assert len(hits) == 1
    assert "sim.parallel.launch" in hits[0].message


# ----------------------------------------------------------------------
# effect-fork-unsafe
# ----------------------------------------------------------------------

FORK_HANDLE_BAD = {
    "sim/parallel.py": """\
        from repro.sim.trace import log

        WORKER_ENTRY_POINTS = ("run_spec",)

        def run_spec(spec):
            log(str(spec))
            return spec
    """,
    "sim/trace.py": """\
        _LOG = open("/tmp/trace.log", "a")

        def log(message):
            _LOG.write(message)
    """,
}

FORK_HANDLE_GOOD = {
    "sim/parallel.py": FORK_HANDLE_BAD["sim/parallel.py"],
    "sim/trace.py": """\
        def log(message):
            with open("/tmp/trace.log", "a") as handle:
                handle.write(message)
    """,
}


def test_fork_unsafe_fires_on_global_handle(tmp_path):
    hits = effects(tmp_path, FORK_HANDLE_BAD, "effect-fork-unsafe")
    assert len(hits) == 1
    assert "sim.trace:_LOG" in hits[0].message
    assert "sim.parallel.run_spec -> sim.trace.log" in hits[0].message


def test_fork_unsafe_clean_on_function_local_handle(tmp_path):
    assert not effects(tmp_path, FORK_HANDLE_GOOD, "effect-fork-unsafe")


def test_fork_unsafe_fires_on_direct_fork(tmp_path):
    files = {
        "guestos/spawn.py": """\
            import os

            def clone_worker():
                return os.fork()
        """,
    }
    hits = effects(tmp_path, files, "effect-fork-unsafe")
    assert len(hits) == 1
    assert "os.fork" in hits[0].message


# ----------------------------------------------------------------------
# effect-rng-aliasing
# ----------------------------------------------------------------------

RNG_SPLIT_BAD = {
    "sim/faults.py": """\
        def perturb(rng, value):
            return value + rng.random()
    """,
    "sim/policy.py": """\
        from repro.sim.faults import perturb

        class Policy:
            def __init__(self, rng):
                self.rng = rng

            def decide(self, value):
                jitter = self.rng.random()
                return perturb(self.rng, value) + jitter
    """,
}

RNG_SPLIT_GOOD = {
    "sim/faults.py": RNG_SPLIT_BAD["sim/faults.py"],
    "sim/policy.py": """\
        from repro.sim.faults import perturb

        class Policy:
            def __init__(self, place_rng, fault_rng):
                self.place_rng = place_rng
                self.fault_rng = fault_rng

            def decide(self, value):
                jitter = self.place_rng.random()
                return perturb(self.fault_rng, value)
    """,
}


def test_rng_aliasing_fires_on_stream_split_across_call(tmp_path):
    hits = effects(tmp_path, RNG_SPLIT_BAD, "effect-rng-aliasing")
    assert len(hits) == 1
    # Callee-summary evidence: the callee's own stream appears in the
    # message alongside the caller-frame identity it maps to.
    assert "Policy.rng" in hits[0].message
    assert "perturb()" in hits[0].message
    assert "param:rng" in hits[0].message


def test_rng_aliasing_clean_when_streams_are_disjoint(tmp_path):
    assert not effects(tmp_path, RNG_SPLIT_GOOD, "effect-rng-aliasing")


def test_rng_aliasing_fires_on_two_streams_in_one_body(tmp_path):
    files = {
        "sim/policy.py": """\
            class Policy:
                def __init__(self, place_rng, fault_rng):
                    self.place_rng = place_rng
                    self.fault_rng = fault_rng

                def mix(self):
                    return self.place_rng.random() + self.fault_rng.random()
        """,
    }
    hits = effects(tmp_path, files, "effect-rng-aliasing")
    assert len(hits) == 1
    assert "Policy.fault_rng" in hits[0].message
    assert "Policy.place_rng" in hits[0].message


# ----------------------------------------------------------------------
# effect-order-dep
# ----------------------------------------------------------------------

ORDER_DEP_BAD = {
    "sim/kernel.py": """\
        def jitter(rng):
            return rng.random()

        def scatter(nodes, rng):
            total = 0.0
            for name in nodes.keys():
                total += jitter(rng)
            return total
    """,
}

ORDER_DEP_GOOD = {
    "sim/kernel.py": """\
        def jitter(rng):
            return rng.random()

        def scatter(nodes, rng):
            total = 0.0
            for name in sorted(nodes):
                total += jitter(rng)
            return total
    """,
}


def test_order_dep_fires_via_callee_summary(tmp_path):
    hits = effects(tmp_path, ORDER_DEP_BAD, "effect-order-dep")
    assert len(hits) == 1
    assert "dict .keys() view" in hits[0].message
    # Interprocedural evidence: the draw is inside the callee, found
    # through its summary, and named in the message.
    assert "jitter() draws from RNG stream" in hits[0].message


def test_order_dep_clean_when_sorted(tmp_path):
    assert not effects(tmp_path, ORDER_DEP_GOOD, "effect-order-dep")


def test_order_dep_fires_on_direct_draw_in_set_loop(tmp_path):
    files = {
        "sim/kernel.py": """\
            def pick(extents, rng):
                for extent in set(extents):
                    if rng.random() < 0.5:
                        return extent
                return None
        """,
    }
    hits = effects(tmp_path, files, "effect-order-dep")
    assert len(hits) == 1
    assert "set()" in hits[0].message


def test_effect_rule_metadata_namespace():
    metadata = effect_rule_metadata()
    assert set(metadata) == {
        "effect-shared-write",
        "effect-fork-unsafe",
        "effect-rng-aliasing",
        "effect-order-dep",
    }
    assert all(rule.startswith("effect-") for rule in metadata)


def test_suppression_comment_applies_to_effect_findings(tmp_path):
    files = {
        "sim/parallel.py": PARALLEL_RUNNER,
        "sim/stats.py": """\
            _MEMO = {}

            def record(spec):
                # heterolint: disable-next-line=effect-shared-write
                _MEMO[spec] = 1
                return _MEMO
        """,
    }
    report, _index = deep_lint_paths(
        [make_tree(tmp_path, files)],
        include_shallow=False,
        include_deep=False,
        include_effects=True,
    )
    assert not report.findings
    assert any(
        f.rule_id == "effect-shared-write" for f in report.suppressed
    )


# ----------------------------------------------------------------------
# Phase certification
# ----------------------------------------------------------------------

ENGINE_CLEAN = {
    "sim/engine.py": """\
        STEP_PHASES = {
            "timing": {
                "roots": ["Engine._timing_phase"],
                "writes": ["Stats.stall_ns"],
            },
        }

        class Stats:
            def __init__(self):
                self.stall_ns = 0.0

        class Engine:
            def __init__(self, stats: Stats):
                self.stats = stats

            def _timing_phase(self, demand):
                self.stats.stall_ns = demand * 2.0
                return self.stats.stall_ns
    """,
}


def certify(tmp_path, files):
    index = build_index(tmp_path, files)
    return compute_ledger(index, EffectAnalysis(index))


def test_certify_clean_phase(tmp_path):
    ledger = certify(tmp_path, ENGINE_CLEAN)
    phase = ledger["phases"]["timing"]
    assert phase["certified"]
    assert phase["observed_writes"] == ["Stats.stall_ns"]
    assert phase["violations"] == []


def test_certify_flags_rng_and_undeclared_write(tmp_path):
    files = {
        "sim/engine.py": """\
            STEP_PHASES = {
                "timing": {
                    "roots": ["Engine._timing_phase"],
                    "writes": ["Stats.stall_ns"],
                },
            }

            class Stats:
                def __init__(self):
                    self.stall_ns = 0.0

            class Engine:
                def __init__(self, stats: Stats, rng):
                    self.stats = stats
                    self.rng = rng

                def _timing_phase(self, demand):
                    self.stats.stall_ns = demand * self.rng.random()
                    self.last_demand = demand
                    return self.stats.stall_ns
        """,
    }
    phase = certify(tmp_path, files)["phases"]["timing"]
    assert not phase["certified"]
    kinds = {v.split(" ", 1)[0] for v in phase["violations"]}
    assert kinds == {"rng-draw", "undeclared-write"}


def test_certify_flags_transitive_effect_with_provenance(tmp_path):
    files = {
        "sim/engine.py": """\
            from repro.sim.faults import fires

            STEP_PHASES = {
                "demand": {"roots": ["Engine._demand_phase"], "writes": []},
            }

            class Engine:
                def _demand_phase(self, rng):
                    return fires(rng)
        """,
        "sim/faults.py": """\
            def fires(rng):
                return rng.random() < 0.1
        """,
    }
    phase = certify(tmp_path, files)["phases"]["demand"]
    assert not phase["certified"]
    assert any(
        v.startswith("rng-draw") and "via sim.faults.fires" in v
        for v in phase["violations"]
    )


def test_certify_assume_patterns_and_wildcards(tmp_path):
    files = {
        "sim/engine.py": """\
            STEP_PHASES = {
                "sample": {
                    "roots": ["Engine._sample_phase"],
                    "writes": ["Engine._prev_*"],
                    "assume": {
                        "?.on_sample": "sinks never feed back into state",
                    },
                },
            }

            class Engine:
                def _sample_phase(self, sinks, pages):
                    self._prev_pages = pages
                    self._prev_epoch = pages // 4096
                    for sink in sinks:
                        sink.on_sample(pages)
        """,
    }
    phase = certify(tmp_path, files)["phases"]["sample"]
    assert phase["certified"]
    assert phase["observed_writes"] == [
        "Engine._prev_epoch", "Engine._prev_pages",
    ]
    assert phase["assumed"] == {
        "?.on_sample": "sinks never feed back into state",
    }


def test_certify_unassumed_opaque_call_blocks(tmp_path):
    files = {
        "sim/engine.py": """\
            STEP_PHASES = {
                "policy": {"roots": ["Engine._policy_phase"], "writes": []},
            }

            class Engine:
                def _policy_phase(self, epoch):
                    return self.hook(epoch)
        """,
    }
    phase = certify(tmp_path, files)["phases"]["policy"]
    assert not phase["certified"]
    assert any(
        v.startswith("unknown-call Engine.hook")
        for v in phase["violations"]
    )


def test_certify_missing_root_is_a_violation(tmp_path):
    files = {
        "sim/engine.py": """\
            STEP_PHASES = {
                "timing": {"roots": ["Engine._gone"], "writes": []},
            }

            class Engine:
                pass
        """,
    }
    phase = certify(tmp_path, files)["phases"]["timing"]
    assert not phase["certified"]
    assert phase["violations"] == ["missing-root sim.engine.Engine._gone"]


def test_certify_without_marker_raises(tmp_path):
    files = {"sim/engine.py": "class Engine:\n    pass\n"}
    index = build_index(tmp_path, files)
    with pytest.raises(LintError):
        compute_ledger(index, EffectAnalysis(index))


def test_ledger_json_is_deterministic(tmp_path):
    first = ledger_json(certify(tmp_path, ENGINE_CLEAN))
    second = ledger_json(certify(tmp_path, ENGINE_CLEAN))
    assert first == second
    assert first.endswith("\n")
    json.loads(first)  # valid JSON


# ----------------------------------------------------------------------
# Ledger diffing
# ----------------------------------------------------------------------


def _phase(certified=True, violations=()):
    return {
        "certified": certified,
        "roots": ["Engine._timing_phase"],
        "declared_writes": [],
        "observed_writes": [],
        "assumed": {},
        "violations": sorted(violations),
    }


def test_diff_ledgers_equal_is_empty():
    ledger = {"version": 1, "phases": {"timing": _phase()}}
    assert diff_ledgers(ledger, ledger) == []


def test_diff_ledgers_reports_decertification_with_new_effects():
    committed = {"version": 1, "phases": {"timing": _phase()}}
    fresh = {
        "version": 1,
        "phases": {
            "timing": _phase(
                certified=False,
                violations=["rng-draw Engine.rng"],
            )
        },
    }
    problems = diff_ledgers(committed, fresh)
    assert len(problems) == 1
    assert "DECERTIFIED" in problems[0]
    assert "rng-draw Engine.rng" in problems[0]


def test_diff_ledgers_reports_new_and_gone_phases():
    committed = {"version": 1, "phases": {"timing": _phase()}}
    fresh = {"version": 1, "phases": {"sample": _phase()}}
    problems = diff_ledgers(committed, fresh)
    assert any("new (not in committed ledger)" in p for p in problems)
    assert any("gone from the fresh run" in p for p in problems)


def test_diff_ledgers_reports_changed_fields():
    committed = {"version": 1, "phases": {"timing": _phase()}}
    changed = _phase()
    changed["observed_writes"] = ["Stats.stall_ns"]
    fresh = {"version": 1, "phases": {"timing": changed}}
    problems = diff_ledgers(committed, fresh)
    assert len(problems) == 1
    assert "observed_writes changed" in problems[0]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_certify_write_then_check(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    root = make_tree(tmp_path, ENGINE_CLEAN)
    ledger_path = tmp_path / "ledger.json"
    assert main(["certify", str(root), "--out", str(ledger_path)]) == 0
    out = capsys.readouterr().out
    assert "timing" in out and "certified" in out
    assert ledger_path.exists()

    assert (
        main(["certify", str(root), "--out", str(ledger_path), "--check"])
        == 0
    )
    assert "matches" in capsys.readouterr().out


def test_cli_certify_check_fails_on_impurified_phase(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    root = make_tree(tmp_path, ENGINE_CLEAN)
    ledger_path = tmp_path / "ledger.json"
    assert main(["certify", str(root), "--out", str(ledger_path)]) == 0
    capsys.readouterr()

    engine = root / "sim" / "engine.py"
    source = engine.read_text(encoding="utf-8")
    assert "demand * 2.0" in source
    engine.write_text(
        source.replace("demand * 2.0", "demand * self.rng.random()"),
        encoding="utf-8",
    )
    assert (
        main(["certify", str(root), "--out", str(ledger_path), "--check"])
        == 1
    )
    out = capsys.readouterr().out
    assert "DECERTIFIED" in out
    assert "rng-draw" in out


def test_cli_certify_without_marker_exits_2(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    root = make_tree(tmp_path, {"sim/engine.py": "x = 1\n"})
    assert main(["certify", str(root)]) == 2


def test_cli_lint_effects_flag(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    root = make_tree(tmp_path, SHARED_WRITE_BAD)
    assert main(["lint", "--effects", str(root)]) == 1
    assert "effect-shared-write" in capsys.readouterr().out
