"""Host-side sweep resilience: retries, journals, cache degradation.

Covers the non-simulated half of the fault story: a transient worker
failure retries with backoff, a killed sweep resumes from its journal,
and an unwritable result cache degrades to uncached execution instead
of failing the sweep.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.errors import MigrationError
from repro.faults import FaultPlan, FaultSpec
from repro.sim import parallel
from repro.sim.parallel import (
    ExperimentSpec,
    ResultCache,
    SpecFailure,
    SweepJournal,
    make_spec,
    run_specs,
)


def tiny_spec(policy: str = "hetero-lru") -> ExperimentSpec:
    return make_spec("redis", policy, epochs=2)


def faulty_spec(policy: str = "hetero-lru") -> ExperimentSpec:
    plan = FaultPlan(
        seed=13,
        faults=(
            FaultSpec("channel-drop", probability=0.5),
            FaultSpec("device-derate", probability=0.5,
                      latency_factor=2.0),
        ),
    )
    return make_spec("redis", policy, epochs=3, faults=plan)


def as_dicts(outcomes):
    return [dataclasses.asdict(outcome.result) for outcome in outcomes]


# ----------------------------------------------------------------------
# Fault plans in specs: hashing, labels, execution equivalence
# ----------------------------------------------------------------------


def test_empty_plan_normalizes_to_no_plan():
    bare = make_spec("redis", "hetero-lru", epochs=2)
    pinned = make_spec("redis", "hetero-lru", epochs=2,
                       faults=FaultPlan.none())
    assert pinned == bare
    assert pinned.cache_key("fp") == bare.cache_key("fp")


def test_faulty_spec_changes_cache_key_and_label():
    bare = tiny_spec()
    faulty = faulty_spec()
    assert faulty.cache_key("fp") != bare.cache_key("fp")
    assert "faults=2" in faulty.label


def test_spec_accepts_plan_as_mapping():
    plan = FaultPlan(faults=(FaultSpec("channel-drop"),))
    from_mapping = make_spec("redis", "hetero-lru", epochs=2,
                             faults=plan.canonical())
    assert from_mapping.faults == plan


def test_faulty_results_identical_serial_parallel_cached(tmp_path):
    specs = [faulty_spec("hetero-lru"), faulty_spec("hetero-coordinated")]
    serial = run_specs(specs, max_workers=1)
    parallel_run = run_specs(specs, max_workers=2)
    cache = ResultCache(tmp_path / "cache")
    warm = run_specs(specs, max_workers=1, cache=cache)
    cached = run_specs(specs, max_workers=1, cache=cache)
    assert all(outcome.ok for outcome in serial + parallel_run + cached)
    assert as_dicts(serial) == as_dicts(parallel_run)
    assert as_dicts(serial) == as_dicts(warm)
    assert as_dicts(serial) == as_dicts(cached)
    assert [outcome.source for outcome in cached] == ["cache", "cache"]


# ----------------------------------------------------------------------
# Bounded retry with backoff
# ----------------------------------------------------------------------


def test_transient_timeout_retries_and_succeeds(monkeypatch):
    real = parallel._run_one
    calls = []

    def flaky(spec, timeout_sec, capture_timelines=False):
        calls.append(spec.label)
        if len(calls) == 1:
            return ("timeout", "injected budget overrun", 0.0)
        return real(spec, timeout_sec, capture_timelines)

    monkeypatch.setattr(parallel, "_run_one", flaky)
    outcomes = run_specs([tiny_spec()], retries=2, retry_backoff_sec=0.0)
    assert outcomes[0].ok
    assert len(calls) == 2


def test_no_retries_surfaces_transient_failure(monkeypatch):
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: ("timeout", "injected", 0.0),
    )
    outcomes = run_specs([tiny_spec()], retries=0)
    failure = outcomes[0].error
    assert failure is not None and failure.kind == "timeout"
    assert failure.transient


def test_deterministic_error_never_retries(monkeypatch):
    calls = []

    def always_error(spec, timeout_sec, capture_timelines=False):
        calls.append(spec.label)
        return (
            "error", ("MigrationError", "MigrationError: injected"), 0.0,
        )

    monkeypatch.setattr(parallel, "_run_one", always_error)
    outcomes = run_specs([tiny_spec()], retries=3, retry_backoff_sec=0.0)
    failure = outcomes[0].error
    assert len(calls) == 1  # re-simulating would reproduce the error
    assert failure is not None and not failure.transient
    assert failure.error_type == "MigrationError"
    assert failure.exception_class() is MigrationError


def test_retries_exhausted_keeps_last_failure(monkeypatch):
    calls = []

    def always_timeout(spec, timeout_sec, capture_timelines=False):
        calls.append(spec.label)
        return ("timeout", "injected", 0.0)

    monkeypatch.setattr(parallel, "_run_one", always_timeout)
    outcomes = run_specs([tiny_spec()], retries=2, retry_backoff_sec=0.0)
    assert len(calls) == 3  # first attempt + 2 retries
    assert outcomes[0].error is not None
    assert outcomes[0].error.kind == "timeout"


def test_backoff_is_exponential(monkeypatch):
    delays = []
    monkeypatch.setattr(
        parallel, "_sleep_backoff",
        lambda base, attempt: delays.append(base * (2 ** (attempt - 1))),
    )
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: ("timeout", "injected", 0.0),
    )
    run_specs([tiny_spec()], retries=3, retry_backoff_sec=0.5)
    assert delays == [0.5, 1.0, 2.0]


# ----------------------------------------------------------------------
# Sweep journal and --resume
# ----------------------------------------------------------------------


def test_journal_round_trips_failures(tmp_path):
    journal = SweepJournal(tmp_path / "journal.jsonl")
    spec = tiny_spec()
    outcome = parallel.SpecOutcome(
        spec=spec,
        error=SpecFailure(kind="error", message="ConfigurationError: bad",
                          error_type="ConfigurationError"),
    )
    journal.record(spec, "fp", outcome)
    entry = journal.load()[spec.cache_key("fp")]
    assert entry["status"] == "failed"
    assert entry["kind"] == "error"
    assert entry["error_type"] == "ConfigurationError"
    journal.reset()
    assert journal.load() == {}


def test_journal_skips_corrupt_lines_last_entry_wins(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(
        '{"key":"k","status":"failed","kind":"timeout"}\n'
        '{"key":"k","status"\n'  # torn write from a kill mid-append
        'not json at all\n'
        '{"key":"k","status":"failed","kind":"error","message":"m"}\n'
    )
    journal = SweepJournal(path)
    with pytest.warns(RuntimeWarning, match="2 corrupt line"):
        entries = journal.load()
    assert entries["k"]["kind"] == "error"
    # The skip count is surfaced, not swallowed: the flight recorder
    # turns it into sweep_journal_corrupt_lines_total.
    assert journal.corrupt_lines_skipped == 2


def test_journal_records_source_and_elapsed(tmp_path):
    spec = tiny_spec()
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record(
        spec, "fp",
        parallel.SpecOutcome(
            spec=spec, result="r", source="parallel", elapsed_sec=1.25
        ),
    )
    entry = journal.load()[spec.cache_key("fp")]
    assert entry["source"] == "parallel"
    assert entry["elapsed_sec"] == pytest.approx(1.25)


def test_journaled_deterministic_failure_is_reused(monkeypatch, tmp_path):
    spec = tiny_spec()
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record(
        spec, "fp",
        parallel.SpecOutcome(
            spec=spec,
            error=SpecFailure(kind="error", message="injected",
                              error_type="MigrationError"),
        ),
    )

    def boom(spec, timeout_sec, capture_timelines=False):
        raise AssertionError("journaled spec must not re-run")

    monkeypatch.setattr(parallel, "_run_one", boom)
    outcomes = run_specs([spec], journal=journal, fingerprint="fp")
    assert outcomes[0].source == "journal"
    assert outcomes[0].error is not None
    assert outcomes[0].error.error_type == "MigrationError"


def test_journaled_transient_failure_reruns(tmp_path):
    spec = tiny_spec()
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record(
        spec, "fp",
        parallel.SpecOutcome(
            spec=spec,
            error=SpecFailure(kind="timeout", message="injected"),
        ),
    )
    outcomes = run_specs([spec], journal=journal, fingerprint="fp")
    assert outcomes[0].ok  # a retry could (and did) change the outcome


def test_killed_sweep_resumes_to_identical_results(tmp_path):
    """Interrupt-after-half then resume == one uninterrupted sweep."""
    specs = [faulty_spec("hetero-lru"), faulty_spec("hetero-coordinated"),
             tiny_spec("slowmem-only")]
    uninterrupted = run_specs(
        specs, cache=ResultCache(tmp_path / "a"),
        journal=tmp_path / "a" / "journal.jsonl",
    )
    # The "killed" sweep only got through the first spec.
    cache_b = ResultCache(tmp_path / "b")
    journal_b = tmp_path / "b" / "journal.jsonl"
    run_specs(specs[:1], cache=cache_b, journal=journal_b)
    resumed = run_specs(specs, cache=cache_b, journal=journal_b)
    assert resumed[0].source == "cache"  # finished work is not redone
    assert as_dicts(uninterrupted) == as_dicts(resumed)


# ----------------------------------------------------------------------
# Cache degradation
# ----------------------------------------------------------------------


def test_cache_directory_blocked_by_file_degrades(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied")
    cache = ResultCache(blocker / "cache")
    assert not cache.writable()
    with pytest.warns(RuntimeWarning, match="uncached serial"):
        outcomes = run_specs([tiny_spec()], max_workers=2, cache=cache)
    assert outcomes[0].ok
    assert outcomes[0].source == "serial"


@pytest.mark.skipif(
    os.geteuid() == 0, reason="root ignores directory permission bits"
)
def test_read_only_cache_dir_degrades_to_miss_and_warn(tmp_path):
    directory = tmp_path / "cache"
    directory.mkdir()
    directory.chmod(0o500)
    try:
        cache = ResultCache(directory)
        assert not cache.writable()
        with pytest.warns(RuntimeWarning, match="uncached serial"):
            outcomes = run_specs([tiny_spec()], cache=cache)
        assert outcomes[0].ok
    finally:
        directory.chmod(0o700)


def test_store_failure_warns_once_not_raises(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("occupied")
    cache = ResultCache(blocker / "cache")
    spec = tiny_spec()
    result = run_specs([spec])[0].result
    with pytest.warns(RuntimeWarning, match="not writable"):
        cache.store(spec, "fp", result)
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        cache.store(spec, "fp", result)  # warned once already: silent
    assert cache.lookup(spec, "fp") is None  # plain miss, no raise
