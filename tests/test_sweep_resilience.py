"""Host-side sweep resilience: retries, journals, cache degradation.

Covers the non-simulated half of the fault story: a transient worker
failure retries with backoff, a killed sweep resumes from its journal,
and an unwritable result cache degrades to uncached execution instead
of failing the sweep.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.errors import MigrationError
from repro.faults import FaultPlan, FaultSpec
from repro.sim import parallel
from repro.sim.parallel import (
    ExperimentSpec,
    ResultCache,
    SpecFailure,
    SweepJournal,
    make_spec,
    run_specs,
)


def tiny_spec(policy: str = "hetero-lru") -> ExperimentSpec:
    return make_spec("redis", policy, epochs=2)


def faulty_spec(policy: str = "hetero-lru") -> ExperimentSpec:
    plan = FaultPlan(
        seed=13,
        faults=(
            FaultSpec("channel-drop", probability=0.5),
            FaultSpec("device-derate", probability=0.5,
                      latency_factor=2.0),
        ),
    )
    return make_spec("redis", policy, epochs=3, faults=plan)


def as_dicts(outcomes):
    return [dataclasses.asdict(outcome.result) for outcome in outcomes]


# ----------------------------------------------------------------------
# Fault plans in specs: hashing, labels, execution equivalence
# ----------------------------------------------------------------------


def test_empty_plan_normalizes_to_no_plan():
    bare = make_spec("redis", "hetero-lru", epochs=2)
    pinned = make_spec("redis", "hetero-lru", epochs=2,
                       faults=FaultPlan.none())
    assert pinned == bare
    assert pinned.cache_key("fp") == bare.cache_key("fp")


def test_faulty_spec_changes_cache_key_and_label():
    bare = tiny_spec()
    faulty = faulty_spec()
    assert faulty.cache_key("fp") != bare.cache_key("fp")
    assert "faults=2" in faulty.label


def test_spec_accepts_plan_as_mapping():
    plan = FaultPlan(faults=(FaultSpec("channel-drop"),))
    from_mapping = make_spec("redis", "hetero-lru", epochs=2,
                             faults=plan.canonical())
    assert from_mapping.faults == plan


def test_faulty_results_identical_serial_parallel_cached(tmp_path):
    specs = [faulty_spec("hetero-lru"), faulty_spec("hetero-coordinated")]
    serial = run_specs(specs, max_workers=1)
    parallel_run = run_specs(specs, max_workers=2)
    cache = ResultCache(tmp_path / "cache")
    warm = run_specs(specs, max_workers=1, cache=cache)
    cached = run_specs(specs, max_workers=1, cache=cache)
    assert all(outcome.ok for outcome in serial + parallel_run + cached)
    assert as_dicts(serial) == as_dicts(parallel_run)
    assert as_dicts(serial) == as_dicts(warm)
    assert as_dicts(serial) == as_dicts(cached)
    assert [outcome.source for outcome in cached] == ["cache", "cache"]


# ----------------------------------------------------------------------
# Bounded retry with backoff
# ----------------------------------------------------------------------


def test_transient_timeout_retries_and_succeeds(monkeypatch):
    real = parallel._run_one
    calls = []

    def flaky(spec, timeout_sec, capture_timelines=False):
        calls.append(spec.label)
        if len(calls) == 1:
            return ("timeout", "injected budget overrun", 0.0)
        return real(spec, timeout_sec, capture_timelines)

    monkeypatch.setattr(parallel, "_run_one", flaky)
    outcomes = run_specs([tiny_spec()], retries=2, retry_backoff_sec=0.0)
    assert outcomes[0].ok
    assert len(calls) == 2


def test_no_retries_surfaces_transient_failure(monkeypatch):
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: ("timeout", "injected", 0.0),
    )
    outcomes = run_specs([tiny_spec()], retries=0)
    failure = outcomes[0].error
    assert failure is not None and failure.kind == "timeout"
    assert failure.transient


def test_deterministic_error_never_retries(monkeypatch):
    calls = []

    def always_error(spec, timeout_sec, capture_timelines=False):
        calls.append(spec.label)
        return (
            "error", ("MigrationError", "MigrationError: injected"), 0.0,
        )

    monkeypatch.setattr(parallel, "_run_one", always_error)
    outcomes = run_specs([tiny_spec()], retries=3, retry_backoff_sec=0.0)
    failure = outcomes[0].error
    assert len(calls) == 1  # re-simulating would reproduce the error
    assert failure is not None and not failure.transient
    assert failure.error_type == "MigrationError"
    assert failure.exception_class() is MigrationError


def test_retries_exhausted_keeps_last_failure(monkeypatch):
    calls = []

    def always_timeout(spec, timeout_sec, capture_timelines=False):
        calls.append(spec.label)
        return ("timeout", "injected", 0.0)

    monkeypatch.setattr(parallel, "_run_one", always_timeout)
    outcomes = run_specs([tiny_spec()], retries=2, retry_backoff_sec=0.0)
    assert len(calls) == 3  # first attempt + 2 retries
    assert outcomes[0].error is not None
    assert outcomes[0].error.kind == "timeout"


def test_backoff_is_exponential(monkeypatch):
    delays = []
    monkeypatch.setattr(
        parallel, "_sleep_backoff",
        lambda base, attempt: delays.append(base * (2 ** (attempt - 1))),
    )
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: ("timeout", "injected", 0.0),
    )
    run_specs([tiny_spec()], retries=3, retry_backoff_sec=0.5)
    assert delays == [0.5, 1.0, 2.0]


# ----------------------------------------------------------------------
# Sweep journal and --resume
# ----------------------------------------------------------------------


def test_journal_round_trips_failures(tmp_path):
    journal = SweepJournal(tmp_path / "journal.jsonl")
    spec = tiny_spec()
    outcome = parallel.SpecOutcome(
        spec=spec,
        error=SpecFailure(kind="error", message="ConfigurationError: bad",
                          error_type="ConfigurationError"),
    )
    journal.record(spec, "fp", outcome)
    entry = journal.load()[spec.cache_key("fp")]
    assert entry["status"] == "failed"
    assert entry["kind"] == "error"
    assert entry["error_type"] == "ConfigurationError"
    journal.reset()
    assert journal.load() == {}


def test_journal_skips_corrupt_lines_last_entry_wins(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(
        '{"key":"k","status":"failed","kind":"timeout"}\n'
        '{"key":"k","status"\n'  # torn write from a kill mid-append
        'not json at all\n'
        '{"key":"k","status":"failed","kind":"error","message":"m"}\n'
    )
    journal = SweepJournal(path)
    with pytest.warns(RuntimeWarning, match="2 corrupt line"):
        entries = journal.load()
    assert entries["k"]["kind"] == "error"
    # The skip count is surfaced, not swallowed: the flight recorder
    # turns it into sweep_journal_corrupt_lines_total.
    assert journal.corrupt_lines_skipped == 2


def test_journal_records_source_and_elapsed(tmp_path):
    spec = tiny_spec()
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record(
        spec, "fp",
        parallel.SpecOutcome(
            spec=spec, result="r", source="parallel", elapsed_sec=1.25
        ),
    )
    entry = journal.load()[spec.cache_key("fp")]
    assert entry["source"] == "parallel"
    assert entry["elapsed_sec"] == pytest.approx(1.25)


def test_journaled_deterministic_failure_is_reused(monkeypatch, tmp_path):
    spec = tiny_spec()
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record(
        spec, "fp",
        parallel.SpecOutcome(
            spec=spec,
            error=SpecFailure(kind="error", message="injected",
                              error_type="MigrationError"),
        ),
    )

    def boom(spec, timeout_sec, capture_timelines=False):
        raise AssertionError("journaled spec must not re-run")

    monkeypatch.setattr(parallel, "_run_one", boom)
    outcomes = run_specs([spec], journal=journal, fingerprint="fp")
    assert outcomes[0].source == "journal"
    assert outcomes[0].error is not None
    assert outcomes[0].error.error_type == "MigrationError"


def test_journaled_transient_failure_reruns(tmp_path):
    spec = tiny_spec()
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record(
        spec, "fp",
        parallel.SpecOutcome(
            spec=spec,
            error=SpecFailure(kind="timeout", message="injected"),
        ),
    )
    outcomes = run_specs([spec], journal=journal, fingerprint="fp")
    assert outcomes[0].ok  # a retry could (and did) change the outcome


def test_killed_sweep_resumes_to_identical_results(tmp_path):
    """Interrupt-after-half then resume == one uninterrupted sweep."""
    specs = [faulty_spec("hetero-lru"), faulty_spec("hetero-coordinated"),
             tiny_spec("slowmem-only")]
    uninterrupted = run_specs(
        specs, cache=ResultCache(tmp_path / "a"),
        journal=tmp_path / "a" / "journal.jsonl",
    )
    # The "killed" sweep only got through the first spec.
    cache_b = ResultCache(tmp_path / "b")
    journal_b = tmp_path / "b" / "journal.jsonl"
    run_specs(specs[:1], cache=cache_b, journal=journal_b)
    resumed = run_specs(specs, cache=cache_b, journal=journal_b)
    assert resumed[0].source == "cache"  # finished work is not redone
    assert as_dicts(uninterrupted) == as_dicts(resumed)


# ----------------------------------------------------------------------
# Cache degradation
# ----------------------------------------------------------------------


def test_cache_directory_blocked_by_file_degrades(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied")
    cache = ResultCache(blocker / "cache")
    assert not cache.writable()
    with pytest.warns(RuntimeWarning, match="uncached serial"):
        outcomes = run_specs([tiny_spec()], max_workers=2, cache=cache)
    assert outcomes[0].ok
    assert outcomes[0].source == "serial"


@pytest.mark.skipif(
    os.geteuid() == 0, reason="root ignores directory permission bits"
)
def test_read_only_cache_dir_degrades_to_miss_and_warn(tmp_path):
    directory = tmp_path / "cache"
    directory.mkdir()
    directory.chmod(0o500)
    try:
        cache = ResultCache(directory)
        assert not cache.writable()
        with pytest.warns(RuntimeWarning, match="uncached serial"):
            outcomes = run_specs([tiny_spec()], cache=cache)
        assert outcomes[0].ok
    finally:
        directory.chmod(0o700)


def test_store_failure_warns_once_not_raises(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("occupied")
    cache = ResultCache(blocker / "cache")
    spec = tiny_spec()
    result = run_specs([spec])[0].result
    with pytest.warns(RuntimeWarning, match="not writable"):
        cache.store(spec, "fp", result)
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        cache.store(spec, "fp", result)  # warned once already: silent
    assert cache.lookup(spec, "fp") is None  # plain miss, no raise


# ----------------------------------------------------------------------
# Advisory file locking (daemon + CLI sharing one cache directory)
# ----------------------------------------------------------------------


def _reset_lock_warnings():
    for key in parallel._LOCK_WARNINGS:
        parallel._LOCK_WARNINGS[key] = False


def test_file_lock_uncontended_acquires_and_releases(tmp_path):
    target = tmp_path / "journal.jsonl"
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        with parallel._FileLock(target) as lock:
            assert lock.path.name == "journal.jsonl.lock"
            assert lock.path.exists()
        # Released: a second uncontended acquisition succeeds silently.
        with parallel._FileLock(target):
            pass


def test_file_lock_contention_blocks_and_warns_once(tmp_path, monkeypatch):
    _reset_lock_warnings()
    calls = []

    class FakeFcntl:
        LOCK_EX = 2
        LOCK_NB = 4
        LOCK_UN = 8

        @staticmethod
        def flock(fd, flags):
            calls.append(flags)
            if flags == FakeFcntl.LOCK_EX | FakeFcntl.LOCK_NB:
                raise OSError(11, "would block")  # another writer holds it

    monkeypatch.setattr(parallel, "fcntl", FakeFcntl)
    target = tmp_path / "journal.jsonl"
    with pytest.warns(RuntimeWarning, match="contended"):
        with parallel._FileLock(target):
            pass
    # Degradation ladder: NB attempt failed, then a blocking acquire.
    assert calls[0] == FakeFcntl.LOCK_EX | FakeFcntl.LOCK_NB
    assert calls[1] == FakeFcntl.LOCK_EX
    # Warn-once: the second contended acquisition is silent.
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        with parallel._FileLock(target):
            pass
    _reset_lock_warnings()


def test_file_lock_without_fcntl_proceeds_unlocked(tmp_path, monkeypatch):
    _reset_lock_warnings()
    monkeypatch.setattr(parallel, "fcntl", None)
    with pytest.warns(RuntimeWarning, match="unavailable"):
        with parallel._FileLock(tmp_path / "journal.jsonl"):
            pass
    _reset_lock_warnings()


def test_journal_record_survives_concurrent_writers(tmp_path):
    # Two journals on one path (a daemon and a CLI sweep) interleave
    # whole lines, never fragments: every record loads back.
    path = tmp_path / "journal.jsonl"
    journals = [SweepJournal(path), SweepJournal(path)]
    specs = [tiny_spec(), tiny_spec("hetero-coordinated")]
    outcome = run_specs([specs[0]])[0]
    for i in range(8):
        journals[i % 2].record(specs[i % 2], f"fp{i}", outcome)
    entries = SweepJournal(path).load()
    assert len(entries) == 8
    assert SweepJournal(path).corrupt_lines_skipped == 0


# ----------------------------------------------------------------------
# Deterministic retry jitter
# ----------------------------------------------------------------------


def test_retry_jitter_fraction_is_deterministic_and_bounded():
    specs = [tiny_spec(), tiny_spec("hetero-coordinated")]
    first = parallel._retry_jitter_fraction(specs, "fp", 1)
    again = parallel._retry_jitter_fraction(specs, "fp", 1)
    assert first == again
    assert 0.0 <= first < 1.0
    # Attempt number and spec identity both perturb the fraction.
    assert parallel._retry_jitter_fraction(specs, "fp", 2) != first
    assert parallel._retry_jitter_fraction(specs[:1], "fp", 1) != first


def test_retry_jitter_stretches_backoff_reproducibly(monkeypatch):
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: ("timeout", "injected", 0.0),
    )

    def observed_delays():
        delays = []
        monkeypatch.setattr(
            parallel, "_sleep_backoff",
            lambda base, attempt: delays.append(base),
        )
        run_specs(
            [tiny_spec()], retries=2, retry_backoff_sec=1.0,
            retry_jitter=0.5,
        )
        return delays

    first = observed_delays()
    assert len(first) == 2
    # Stretched into (base, base * 1.5], never shrunk below base.
    assert all(1.0 < delay <= 1.5 for delay in first)
    assert first != [first[0]] * 2  # attempts jitter independently
    assert observed_delays() == first  # bit-for-bit reproducible


def test_zero_jitter_reproduces_plain_backoff(monkeypatch):
    monkeypatch.setattr(
        parallel, "_run_one",
        lambda spec, t, c=False: ("timeout", "injected", 0.0),
    )
    delays = []
    monkeypatch.setattr(
        parallel, "_sleep_backoff",
        lambda base, attempt: delays.append(base),
    )
    run_specs([tiny_spec()], retries=2, retry_backoff_sec=1.0)
    assert delays == [1.0, 1.0]  # exponentiation happens inside the sleep


# ----------------------------------------------------------------------
# SIGALRM hardening
# ----------------------------------------------------------------------


def _has_alarm():
    import signal

    return hasattr(signal, "SIGALRM")


@pytest.mark.skipif(not _has_alarm(), reason="platform lacks SIGALRM")
def test_run_one_restores_preexisting_alarm_and_handler():
    import signal

    fired = []

    def watchdog(signum, frame):
        fired.append(signum)

    previous = signal.signal(signal.SIGALRM, watchdog)
    signal.setitimer(signal.ITIMER_REAL, 60.0)
    try:
        status = parallel._run_one(tiny_spec(), timeout_sec=30.0)
        assert status[0] == "ok"
        # Our handler and a positive remaining budget both came back.
        assert signal.getsignal(signal.SIGALRM) is watchdog
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert 0.0 < remaining <= 60.0
        assert not fired
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.mark.skipif(not _has_alarm(), reason="platform lacks SIGALRM")
def test_run_one_clears_alarm_when_none_preexisted():
    import signal

    previous = signal.getsignal(signal.SIGALRM)
    status = parallel._run_one(tiny_spec(), timeout_sec=30.0)
    assert status[0] == "ok"
    remaining, _ = signal.getitimer(signal.ITIMER_REAL)
    assert remaining == 0.0
    assert signal.getsignal(signal.SIGALRM) is previous


def test_run_one_timeout_off_main_thread_warns_and_runs():
    import threading
    import warnings as warnings_module

    collected = {}

    def target():
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            collected["status"] = parallel._run_one(
                tiny_spec(), timeout_sec=5.0
            )
            collected["warnings"] = [str(w.message) for w in caught]

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=60)
    assert collected["status"][0] == "ok"
    assert any(
        "without a timeout" in message for message in collected["warnings"]
    )
