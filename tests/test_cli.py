"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "graphchi" in out
    assert "hetero-lru" in out


def test_run_command(capsys):
    code = main(["run", "nginx", "hetero-lru", "--epochs", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "runtime" in out
    assert "mpki" in out
    assert "ops-per-sec" in out


def test_run_command_platform_knobs(capsys):
    code = main(
        [
            "run", "nginx", "slowmem-only", "--epochs", "3",
            "--ratio", "0.5", "--latency-factor", "2",
            "--bandwidth-factor", "2", "--llc-mib", "48",
        ]
    )
    assert code == 0


def test_compare_command(capsys):
    code = main(["compare", "nginx", "--epochs", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "slowmem-only" in out
    assert "gain_pct" in out


def test_figure_command_static(capsys):
    assert main(["figure", "table6"]) == 0
    out = capsys.readouterr().out
    assert "t_page_move_us" in out


def test_figure_command_unknown(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_app_raises():
    with pytest.raises(Exception):
        main(["run", "doom", "hetero-lru", "--epochs", "1"])


def test_trace_command_emits_chrome_trace_and_jsonl(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.json"
    code = main(
        [
            "trace", "redis", "hetero-coordinated",
            "--epochs", "4", "--out", str(trace_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "traced" in out
    assert "profile" in out  # host self-profile breakdown printed
    trace = json.loads(trace_path.read_text())
    assert trace["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
    jsonl_path = trace_path.with_suffix(".jsonl")
    lines = [
        json.loads(line)
        for line in jsonl_path.read_text().splitlines()
    ]
    assert lines[0]["type"] == "header"
    assert lines[-1]["type"] == "summary"
    samples = [l for l in lines if l["type"] == "sample"]
    assert len(samples) == 4
    # Per-epoch runtime sums exactly to the summary's final runtime.
    total = 0.0
    for sample in samples:
        total += sample["runtime_ns"]
    assert total == lines[-1]["runtime_ns"]


def test_timeline_summary_command(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.json"
    jsonl_path = tmp_path / "run.jsonl"
    main(
        [
            "trace", "redis", "hetero-lru", "--epochs", "3",
            "--out", str(trace_path), "--jsonl", str(jsonl_path),
            "--no-profile",
        ]
    )
    capsys.readouterr()
    assert main(["timeline", str(jsonl_path)]) == 0
    out = capsys.readouterr().out
    assert "epoch" in out


def _trace_jsonl(tmp_path, name, seed):
    jsonl_path = tmp_path / name
    main(
        [
            "trace", "redis", "random", "--epochs", "3",
            "--seed", str(seed),
            "--out", str(tmp_path / (name + ".trace.json")),
            "--jsonl", str(jsonl_path), "--no-profile",
        ]
    )
    return jsonl_path


def test_timeline_diff_reports_first_divergence(tmp_path, capsys):
    a = _trace_jsonl(tmp_path, "a.jsonl", seed=7)
    b = _trace_jsonl(tmp_path, "b.jsonl", seed=8)
    capsys.readouterr()
    code = main(["timeline", "--diff", str(a), str(b)])
    assert code == 1
    out = capsys.readouterr().out
    assert "first divergent epoch: 0" in out


def test_timeline_diff_identical_files_exit_zero(tmp_path, capsys):
    a = _trace_jsonl(tmp_path, "a.jsonl", seed=7)
    b = _trace_jsonl(tmp_path, "b2.jsonl", seed=7)
    capsys.readouterr()
    code = main(["timeline", "--diff", str(a), str(b)])
    assert code == 0
    assert "identical" in capsys.readouterr().out


def test_timeline_requires_path_or_diff(capsys):
    assert main(["timeline"]) == 2
