"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "graphchi" in out
    assert "hetero-lru" in out


def test_run_command(capsys):
    code = main(["run", "nginx", "hetero-lru", "--epochs", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "runtime" in out
    assert "mpki" in out
    assert "ops-per-sec" in out


def test_run_command_platform_knobs(capsys):
    code = main(
        [
            "run", "nginx", "slowmem-only", "--epochs", "3",
            "--ratio", "0.5", "--latency-factor", "2",
            "--bandwidth-factor", "2", "--llc-mib", "48",
        ]
    )
    assert code == 0


def test_compare_command(capsys):
    code = main(["compare", "nginx", "--epochs", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "slowmem-only" in out
    assert "gain_pct" in out


def test_figure_command_static(capsys):
    assert main(["figure", "table6"]) == 0
    out = capsys.readouterr().out
    assert "t_page_move_us" in out


def test_figure_command_unknown(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_app_raises():
    with pytest.raises(Exception):
        main(["run", "doom", "hetero-lru", "--epochs", "1"])
