"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "graphchi" in out
    assert "hetero-lru" in out


def test_run_command(capsys):
    code = main(["run", "nginx", "hetero-lru", "--epochs", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "runtime" in out
    assert "mpki" in out
    assert "ops-per-sec" in out


def test_run_command_platform_knobs(capsys):
    code = main(
        [
            "run", "nginx", "slowmem-only", "--epochs", "3",
            "--ratio", "0.5", "--latency-factor", "2",
            "--bandwidth-factor", "2", "--llc-mib", "48",
        ]
    )
    assert code == 0


def test_compare_command(capsys):
    code = main(["compare", "nginx", "--epochs", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "slowmem-only" in out
    assert "gain_pct" in out


def test_figure_command_static(capsys):
    assert main(["figure", "table6"]) == 0
    out = capsys.readouterr().out
    assert "t_page_move_us" in out


def test_figure_command_unknown(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_app_raises():
    with pytest.raises(Exception):
        main(["run", "doom", "hetero-lru", "--epochs", "1"])


def test_trace_command_emits_chrome_trace_and_jsonl(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.json"
    code = main(
        [
            "trace", "redis", "hetero-coordinated",
            "--epochs", "4", "--out", str(trace_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "traced" in out
    assert "profile" in out  # host self-profile breakdown printed
    trace = json.loads(trace_path.read_text())
    assert trace["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in trace["traceEvents"])
    jsonl_path = trace_path.with_suffix(".jsonl")
    lines = [
        json.loads(line)
        for line in jsonl_path.read_text().splitlines()
    ]
    assert lines[0]["type"] == "header"
    assert lines[-1]["type"] == "summary"
    samples = [l for l in lines if l["type"] == "sample"]
    assert len(samples) == 4
    # Per-epoch runtime sums exactly to the summary's final runtime.
    total = 0.0
    for sample in samples:
        total += sample["runtime_ns"]
    assert total == lines[-1]["runtime_ns"]


def test_timeline_summary_command(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.json"
    jsonl_path = tmp_path / "run.jsonl"
    main(
        [
            "trace", "redis", "hetero-lru", "--epochs", "3",
            "--out", str(trace_path), "--jsonl", str(jsonl_path),
            "--no-profile",
        ]
    )
    capsys.readouterr()
    assert main(["timeline", str(jsonl_path)]) == 0
    out = capsys.readouterr().out
    assert "epoch" in out


def _trace_jsonl(tmp_path, name, seed):
    jsonl_path = tmp_path / name
    main(
        [
            "trace", "redis", "random", "--epochs", "3",
            "--seed", str(seed),
            "--out", str(tmp_path / (name + ".trace.json")),
            "--jsonl", str(jsonl_path), "--no-profile",
        ]
    )
    return jsonl_path


def test_timeline_diff_reports_first_divergence(tmp_path, capsys):
    a = _trace_jsonl(tmp_path, "a.jsonl", seed=7)
    b = _trace_jsonl(tmp_path, "b.jsonl", seed=8)
    capsys.readouterr()
    code = main(["timeline", "--diff", str(a), str(b)])
    assert code == 1
    out = capsys.readouterr().out
    assert "first divergent epoch: 0" in out


def test_timeline_diff_identical_files_exit_zero(tmp_path, capsys):
    a = _trace_jsonl(tmp_path, "a.jsonl", seed=7)
    b = _trace_jsonl(tmp_path, "b2.jsonl", seed=7)
    capsys.readouterr()
    code = main(["timeline", "--diff", str(a), str(b)])
    assert code == 0
    assert "identical" in capsys.readouterr().out


def test_timeline_requires_path_or_diff(capsys):
    assert main(["timeline"]) == 2


# ---------------------------------------------------------------------------
# Sweep observability: --metrics / --trace-sweep / --live and `repro report`.
# ---------------------------------------------------------------------------


def _sweep_args(tmp_path, *extra):
    return [
        "sweep", "--apps", "nginx", "--policies", "heap-od",
        "--ratios", "0.25", "--epochs", "3",
        "--cache-dir", str(tmp_path / "cache"), *extra,
    ]


def test_cli_sweep_writes_metrics_and_trace(tmp_path, capsys):
    metrics_path = tmp_path / "sweep.metrics.json"
    trace_path = tmp_path / "sweep.trace.json"
    code = main(_sweep_args(
        tmp_path, "--metrics", str(metrics_path),
        "--trace-sweep", str(trace_path),
    ))
    assert code == 0
    captured = capsys.readouterr()
    assert "gain_pct" in captured.out
    assert str(metrics_path) in captured.err
    assert "ui.perfetto.dev" in captured.err
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["version"] == 1
    specs_total = snapshot["metrics"]["sweep_specs_total"]["series"]
    assert sum(s["value"] for s in specs_total) == 2  # policy + baseline
    trace = json.loads(trace_path.read_text())
    assert trace["displayTimeUnit"] == "ms"
    assert all(e["pid"] == 2 for e in trace["traceEvents"])


def test_cli_sweep_metrics_prometheus_by_suffix(tmp_path, capsys):
    metrics_path = tmp_path / "sweep.prom"
    code = main(_sweep_args(tmp_path, "--metrics", str(metrics_path)))
    assert code == 0
    capsys.readouterr()
    text = metrics_path.read_text()
    assert "# TYPE sweep_specs_total counter" in text
    assert 'sweep_specs_total{status="ok"} 2' in text


def test_cli_sweep_live_degrades_without_tty(tmp_path, capsys):
    # capsys' stderr is not a TTY, so --live falls back to plain
    # per-spec progress lines instead of ANSI repaints.
    code = main(_sweep_args(tmp_path, "--live"))
    assert code == 0
    err = capsys.readouterr().err
    assert "\x1b[" not in err
    assert "[2/2]" in err


def test_cli_report_from_cache_dir(tmp_path, capsys):
    metrics_path = tmp_path / "sweep.metrics.json"
    main(_sweep_args(tmp_path, "--metrics", str(metrics_path)))
    capsys.readouterr()
    code = main([
        "report", "--cache-dir", str(tmp_path / "cache"),
        "--metrics", str(metrics_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "specs    : 2 (ok=2)" in out
    assert "cache    :" in out


def test_cli_report_json_format(tmp_path, capsys):
    main(_sweep_args(tmp_path))
    capsys.readouterr()
    journal = tmp_path / "cache" / "sweep-journal.jsonl"
    code = main(["report", "--journal", str(journal), "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["specs"] == 2
    assert payload["statuses"] == {"ok": 2}
    assert payload["sources"] == {"serial": 2}


def test_cli_report_without_journal_is_usage_error(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
    assert main(["report"]) == 2
    assert "--journal" in capsys.readouterr().err


def test_cli_report_missing_journal_file(tmp_path, capsys):
    code = main(["report", "--journal", str(tmp_path / "nope.jsonl")])
    assert code == 1
    assert "no journal" in capsys.readouterr().err


def test_cli_sweep_accepts_retry_jitter(tmp_path, capsys):
    code = main(
        [
            "sweep", "--apps", "redis", "--policies", "hetero-lru",
            "--epochs", "2", "--quiet", "--no-cache",
            "--retries", "1", "--retry-jitter", "0.5",
        ]
    )
    assert code == 0
    assert "hetero-lru" in capsys.readouterr().out


def test_cli_serve_parser_defaults():
    args = build_parser().parse_args(
        ["serve", "--cache-dir", "/tmp/x", "--port", "8123"]
    )
    assert args.cache_dir == "/tmp/x"
    assert args.port == 8123
    assert args.host == "127.0.0.1"
    assert args.workers == 1
    assert args.queue_limit == 16
    assert args.client_limit == 4
    assert args.max_crashes == 2
    assert args.retries == 1
    assert args.unix_socket is None


def test_cli_serve_without_root_is_usage_error(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
    assert main(["serve"]) == 2
    assert "--cache-dir" in capsys.readouterr().err
