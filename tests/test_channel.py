"""Guest/VMM coordination channel."""

import pytest

from repro.errors import ChannelError
from repro.mem.extent import PageType
from repro.vmm.channel import CoordinationChannel


def test_default_exception_list_has_unmigratable_types():
    channel = CoordinationChannel(domain_id=1)
    assert PageType.PAGE_TABLE in channel.exception_types
    assert PageType.DMA in channel.exception_types


def test_tracking_publish_and_read():
    channel = CoordinationChannel(domain_id=1)
    channel.guest_publish_tracking(
        ["heap-a", "heap-b"],
        exception_types={PageType.PAGE_CACHE, PageType.DMA},
    )
    regions, exceptions = channel.vmm_read_tracking()
    assert regions == ["heap-a", "heap-b"]
    assert exceptions == {PageType.PAGE_CACHE, PageType.DMA}


def test_tracking_publish_without_exceptions_keeps_old():
    channel = CoordinationChannel(domain_id=1)
    old = set(channel.exception_types)
    channel.guest_publish_tracking(["r"])
    assert channel.exception_types == old


def test_hot_report_consumed_once():
    channel = CoordinationChannel(domain_id=1)
    channel.vmm_publish_hot([3, 1, 2])
    assert channel.guest_read_hot_report() == [3, 1, 2]
    assert channel.guest_read_hot_report() == []


def test_llc_delta_through_channel():
    channel = CoordinationChannel(domain_id=1)
    channel.vmm_record_epoch(100.0, 1e6)
    channel.vmm_record_epoch(200.0, 1e6)
    assert channel.guest_read_llc_delta() == pytest.approx(1.0)


def test_reads_return_copies():
    channel = CoordinationChannel(domain_id=1)
    channel.guest_publish_tracking(["a"])
    regions, exceptions = channel.vmm_read_tracking()
    regions.append("tampered")
    exceptions.add(PageType.HEAP)
    assert channel.tracking_regions == ["a"]
    assert PageType.HEAP not in channel.exception_types
