"""Daemon lifecycle under real signals: SIGKILL recovery, SIGTERM drain.

These tests drive the actual ``repro serve`` CLI in a subprocess — the
same process-boundary reality a deployment has.  The headline pin:
a daemon SIGKILLed mid-flight and restarted over the same state root
finishes the job with results *bit-for-bit identical* to an
uninterrupted in-process ``run_specs`` over the same batch.
"""

from __future__ import annotations

import dataclasses
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ServeClient
from repro.serve.jobstore import JobStore
from repro.sim.parallel import make_spec, run_specs

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX signals"
)

_ADDRESS_RE = re.compile(r"listening on http://([0-9.]+:\d+)")


def batch():
    return [
        make_spec(app, policy, epochs=3)
        for app in ("redis", "nginx")
        for policy in ("hetero-lru", "hetero-coordinated", "slowmem-only")
    ]


def result_dicts(outcomes):
    return [dataclasses.asdict(outcome.result) for outcome in outcomes]


def start_daemon(root, *extra: str) -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--cache-dir", str(root), "--workers", "2", "--port", "0",
            *extra,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stderr.readline()
    match = _ADDRESS_RE.search(line)
    assert match, f"daemon failed to start: {line!r}"
    return proc, match.group(1)


def stop_daemon(proc: subprocess.Popen) -> int:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    if proc.stderr is not None:
        proc.stderr.close()
    return proc.returncode


def test_sigkill_mid_flight_then_restart_is_bit_identical(tmp_path):
    specs = batch()
    root = tmp_path / "state"
    proc, address = start_daemon(root)
    try:
        client = ServeClient(f"http://{address}", client_id="survivor")
        job_id = client.submit(specs)
    finally:
        # SIGKILL the moment the 202 is out: no drain, no checkpoint
        # hook, nothing — only the journals survive.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        proc.stderr.close()

    proc, address = start_daemon(root)
    try:
        client = ServeClient(f"http://{address}", client_id="survivor")
        # The restarted daemon recovered the journaled job under the
        # same content-addressed id and finishes it unprompted.
        payload = client.wait(job_id, timeout_sec=600, poll_sec=5.0)
        assert payload["state"] == "done"
        served = client.outcomes(payload)
    finally:
        assert stop_daemon(proc) == 0

    direct = run_specs(specs)
    assert all(outcome.ok for outcome in served)
    assert result_dicts(served) == result_dicts(direct)


def test_restart_reuses_cache_for_finished_work(tmp_path):
    specs = batch()[:3]
    root = tmp_path / "state"
    proc, address = start_daemon(root)
    try:
        client = ServeClient(f"http://{address}", client_id="first-life")
        first = client.run(specs, timeout_sec=600)
        assert all(outcome.ok for outcome in first)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        proc.stderr.close()

    proc, address = start_daemon(root)
    try:
        # A different client id makes this a new job over the same
        # specs: the second daemon life serves it from the shared cache
        # without re-simulating anything.
        client = ServeClient(f"http://{address}", client_id="second-life")
        second = client.run(specs, timeout_sec=120)
        assert [outcome.source for outcome in second] == ["cache"] * 3
        assert result_dicts(first) == result_dicts(second)
    finally:
        assert stop_daemon(proc) == 0


def test_sigterm_drains_gracefully_and_exits_zero(tmp_path):
    root = tmp_path / "state"
    proc, address = start_daemon(root)
    client = ServeClient(f"http://{address}", client_id="drainer")
    outcomes = client.run([make_spec("redis", "hetero-lru", epochs=2)],
                          timeout_sec=300)
    assert outcomes[0].ok
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0
    proc.stderr.close()
    # The drain checkpointed cleanly: a fresh store sees the job done
    # and nothing queued.
    store = JobStore(root)
    store.recover()
    counts = {}
    for job in store.jobs.values():
        counts[job.state] = counts.get(job.state, 0) + 1
    assert counts == {"done": 1}


def test_daemon_requires_a_state_root(tmp_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop("REPRO_SWEEP_CACHE_DIR", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve"],
        env=env, capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 2
    assert "--cache-dir" in proc.stderr
