"""Sweep utility, Table 2 driver, per-epoch timeseries recording."""

import pytest

from repro.cli import main
from repro.core import make_policy
from repro.experiments.sweep import TABLE2_DESCRIPTIONS, run_table2, sweep
from repro.hw.throttle import ThrottleConfig
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config
from repro.workloads.registry import ALL_APPS, make_workload


def test_sweep_grid_shape():
    rows = sweep(
        apps=("nginx",),
        policies=("heap-od", "hetero-lru"),
        ratios=(0.25, 0.125),
        throttles=(ThrottleConfig(2, 2), ThrottleConfig(5, 9)),
        epochs=4,
    )
    assert len(rows) == 1 * 2 * 2 * 2
    for row in rows:
        assert row["runtime_sec"] > 0
        assert "gain_pct" in row


def test_sweep_baseline_gains_are_zero_for_baseline_policy():
    rows = sweep(
        apps=("nginx",), policies=("slowmem-only",), epochs=4
    )
    assert rows[0]["gain_pct"] == pytest.approx(0.0)


def test_table2_covers_all_apps():
    assert set(TABLE2_DESCRIPTIONS) == set(ALL_APPS)
    rows = run_table2(epochs=4)
    assert len(rows) == len(ALL_APPS)
    for row in rows:
        assert row["measured"] > 0
        assert row["perf_metric"]


def test_cli_sweep_command(capsys):
    code = main(
        ["sweep", "--apps", "nginx", "--policies", "heap-od",
         "--ratios", "0.25", "--epochs", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "gain_pct" in out


# ----------------------------------------------------------------------
# Timeseries
# ----------------------------------------------------------------------

def test_timeseries_disabled_by_default():
    engine = SimulationEngine(
        build_config(fast_ratio=0.25), make_workload("nginx"),
        make_policy("heap-od"),
    )
    engine.run(5)
    assert engine.timeseries == []


def test_timeseries_records_each_epoch():
    engine = SimulationEngine(
        build_config(fast_ratio=0.25), make_workload("nginx"),
        make_policy("heap-od"), record_timeseries=True,
    )
    result = engine.run(5)
    assert len(engine.timeseries) == 5
    assert [row["epoch"] for row in engine.timeseries] == list(range(5))
    total = sum(row["runtime_ns"] for row in engine.timeseries)
    assert total == pytest.approx(result.stats.runtime_ns)
    for row in engine.timeseries:
        assert 0.0 <= row["fast_stall_fraction"] <= 1.0
        assert row["fast_used_pages"] >= 0


def test_timeseries_shows_phase_shift():
    """The share-shift workload feature is visible in the timeseries."""
    from repro.mem.extent import PageType
    from repro.workloads.base import RegionSpec, StatisticalWorkload

    workload = StatisticalWorkload(
        name="shifty",
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=200_000.0,
        resident=[
            RegionSpec("a", PageType.HEAP, 3000, 0.8, 9.0),
            RegionSpec("b", PageType.HEAP, 3000, 0.8, 1.0),
        ],
        share_shifts=[(5, {"a": 1.0, "b": 9.0})],
    )
    config = build_config(fast_ratio=0.02, slow_gib=1.0)
    engine = SimulationEngine(
        config, workload, make_policy("heap-od"), record_timeseries=True
    )
    engine.run(10)
    before = engine.timeseries[3]["fast_stall_fraction"]
    after = engine.timeseries[8]["fast_stall_fraction"]
    # The fast node held region 'a'; after the shift its stall share
    # collapses because the accesses moved to 'b' on SlowMem.
    assert after != before
