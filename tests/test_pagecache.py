"""I/O page cache bookkeeping."""

import pytest

from repro.errors import AllocationError
from repro.guestos.pagecache import PageCache
from repro.mem.extent import ExtentState, PageExtent, PageType


def io_extent(pages=8, page_type=PageType.PAGE_CACHE) -> PageExtent:
    return PageExtent("io-region", page_type, pages, node_id=0)


def test_insert_and_residency():
    cache = PageCache()
    extent = io_extent()
    cache.insert(extent)
    assert cache.is_resident(extent)
    assert cache.resident_pages == 8
    assert not cache.is_dirty(extent)


def test_only_io_pages_accepted():
    cache = PageCache()
    with pytest.raises(AllocationError):
        cache.insert(PageExtent("r", PageType.HEAP, 4, 0))


def test_duplicate_insert_rejected():
    cache = PageCache()
    extent = io_extent()
    cache.insert(extent)
    with pytest.raises(AllocationError):
        cache.insert(extent)


def test_dirty_insert_and_writeback():
    cache = PageCache()
    extent = io_extent()
    cache.insert(extent, dirty=True)
    assert cache.is_dirty(extent)
    assert cache.dirty_pages == 8
    assert cache.writeback(extent) == 8
    assert not cache.is_dirty(extent)
    assert cache.writeback(extent) == 0  # idempotent


def test_complete_io_marks_inactive_and_fires_hooks():
    cache = PageCache()
    seen = []
    cache.add_io_complete_hook(seen.append)
    extent = io_extent()
    cache.insert(extent)
    cache.complete_io(extent)
    assert extent.state is ExtentState.INACTIVE
    assert seen == [extent]


def test_complete_io_requires_residency():
    cache = PageCache()
    with pytest.raises(AllocationError):
        cache.complete_io(io_extent())


def test_drop_requires_clean_pages():
    """The Section 4.1 page-state validity check: dirty I/O pages must be
    written back before release."""
    cache = PageCache()
    extent = io_extent()
    cache.insert(extent, dirty=True)
    with pytest.raises(AllocationError):
        cache.drop(extent)
    cache.writeback(extent)
    cache.drop(extent)
    assert not cache.is_resident(extent)


def test_drop_unknown_rejected():
    cache = PageCache()
    with pytest.raises(AllocationError):
        cache.drop(io_extent())


def test_mark_dirty_after_insert():
    cache = PageCache()
    extent = io_extent(page_type=PageType.BUFFER_CACHE)
    cache.insert(extent)
    cache.mark_dirty(extent)
    assert cache.is_dirty(extent)
    with pytest.raises(AllocationError):
        cache.mark_dirty(io_extent())


def test_writeback_all():
    cache = PageCache()
    extents = [io_extent() for _ in range(3)]
    for extent in extents:
        cache.insert(extent, dirty=True)
    assert cache.writeback_all() == 24
    assert cache.dirty_pages == 0
    assert cache.stats.writeback_pages == 24


def test_stats_accumulate():
    cache = PageCache()
    extent = io_extent()
    cache.insert(extent)
    cache.complete_io(extent)
    cache.drop(extent)
    assert cache.stats.inserted_pages == 8
    assert cache.stats.completed_pages == 8
    assert cache.stats.dropped_pages == 8
