"""FrameSanitizer: each defect class (double-free, invalid-free,
use-after-free, leak, ownership-race) through the event API, the
instance hooks, and a clean run through the sim engine."""

from __future__ import annotations

import pytest

from repro.devtools.sanitizer import FrameSanitizer
from repro.errors import AllocationError, SanitizerError
from repro.guestos.buddy import BuddyAllocator
from repro.guestos.slab import SlabCache
from repro.mem.extent import PageType
from repro.sim.runner import build_config, run_experiment

from conftest import make_kernel


def kinds(san):
    return [report.kind for report in san.reports]


# ----------------------------------------------------------------------
# Event API: the four required defect classes + invalid-free
# ----------------------------------------------------------------------


def test_event_double_free():
    san = FrameSanitizer()
    san.on_alloc("buddy", 0, 8)
    san.on_free("buddy", 0, 8)
    san.on_free("buddy", 0, 8)
    assert kinds(san) == ["double-free"]
    assert san.reports[0].start == 0 and san.reports[0].count == 8


def test_event_partial_double_free_reports_only_the_overlap():
    san = FrameSanitizer()
    san.on_alloc("buddy", 0, 8)
    san.on_free("buddy", 4, 4)
    san.on_free("buddy", 0, 8)  # frames 4..8 already freed
    assert kinds(san) == ["double-free"]
    assert (san.reports[0].start, san.reports[0].count) == (4, 4)


def test_event_invalid_free_of_never_allocated_frames():
    san = FrameSanitizer()
    san.on_free("wild", 100, 4)
    assert kinds(san) == ["invalid-free"]


def test_event_use_after_free():
    san = FrameSanitizer()
    san.on_alloc("extent:1", 16, 4)
    san.on_use("extent:1", 16, 4)
    assert not san.reports
    san.on_free("buddy", 16, 4)
    san.on_use("extent:1", 16, 4)
    assert kinds(san) == ["use-after-free"]


def test_event_leak_at_teardown():
    san = FrameSanitizer()
    san.on_alloc("buddy", 0, 8)
    san.on_alloc("buddy", 32, 4)
    san.on_free("buddy", 0, 8)
    new = san.check_leaks()
    assert [report.kind for report in new] == ["leak"]
    assert (new[0].start, new[0].count) == (32, 4)
    assert new[0].owner == "buddy"


def test_event_ownership_race_on_overlapping_alloc():
    san = FrameSanitizer()
    san.on_alloc("node0", 0, 8)
    san.on_alloc("node1", 4, 8)
    assert kinds(san) == ["ownership-race"]
    assert (san.reports[0].start, san.reports[0].count) == (4, 4)


def test_event_ownership_race_on_bad_transfer():
    san = FrameSanitizer()
    san.on_alloc("extent:1", 0, 8)
    san.on_transfer("extent:2", "migration", 0, 8)  # extent:2 never owned them
    assert kinds(san) == ["ownership-race"]
    # A transfer from the true owner is clean.
    san.reports.clear()
    san.on_transfer("migration", "extent:3", 0, 8)
    assert not san.reports


def test_clean_cycle_has_no_reports():
    san = FrameSanitizer()
    san.on_alloc("buddy", 0, 64)
    san.on_use("extent:1", 0, 64)
    san.on_free("buddy", 0, 64)
    assert not san.check_leaks()
    assert not san.reports
    assert san.events == 3


def test_spaces_are_independent():
    san = FrameSanitizer()
    san.on_alloc("pool:machine", 0, 8, space="machine")
    san.on_alloc("node0", 0, 8, space="guest")
    assert not san.reports  # same frame numbers, different spaces


def test_strict_mode_raises():
    san = FrameSanitizer(strict=True)
    san.on_alloc("buddy", 0, 4)
    san.on_free("buddy", 0, 4)
    with pytest.raises(SanitizerError):
        san.on_free("buddy", 0, 4)


# ----------------------------------------------------------------------
# Buddy / slab instance hooks
# ----------------------------------------------------------------------


def test_attach_buddy_clean_cycle_and_leak():
    buddy = BuddyAllocator(base=0, frames=256)
    san = FrameSanitizer()
    san.attach_buddy(buddy, owner="zone0")
    ranges = buddy.allocate_pages(24)
    for frame_range in ranges:
        buddy.free_range(frame_range)
    assert not san.check_leaks()

    leaked = buddy.allocate_block(order=2)
    new = san.check_leaks()
    assert [report.kind for report in new] == ["leak"]
    assert (new[0].start, new[0].count) == (leaked.start, leaked.count)


def test_attach_buddy_double_free_reported_before_buddy_raises():
    buddy = BuddyAllocator(base=0, frames=64)
    san = FrameSanitizer()
    san.attach_buddy(buddy, owner="zone0")
    block = buddy.allocate_block(order=3)
    buddy.free_span(block.start, block.count)
    with pytest.raises(AllocationError):
        buddy.free_span(block.start, block.count)
    assert "double-free" in kinds(san)


def test_detach_restores_original_methods():
    buddy = BuddyAllocator(base=0, frames=64)
    san = FrameSanitizer()
    san.attach_buddy(buddy, owner="zone0")
    buddy.allocate_block(order=0)
    assert san.events == 1
    san.detach()
    buddy.allocate_block(order=0)
    assert san.events == 1  # no longer observed
    assert "allocate_block" not in buddy.__dict__


def test_attach_slab_double_free_and_leak():
    pages = {}

    def source(name, count, page_type):
        token = len(pages)
        pages[token] = count
        return token

    def release(name, token):
        del pages[token]

    cache = SlabCache("skbuff", 2048, source, release)
    san = FrameSanitizer()
    san.attach_slab(cache)

    first = cache.allocate()
    second = cache.allocate()
    cache.free(first)
    with pytest.raises(AllocationError):
        cache.free(first)
    assert kinds(san) == ["double-free"]

    leaks = san.check_slab_leaks()
    assert [report.kind for report in leaks] == ["leak"]
    assert repr(second) in leaks[0].detail


# ----------------------------------------------------------------------
# Whole-kernel hooks: defects staged behind the kernel's back
# ----------------------------------------------------------------------


def test_kernel_use_after_free_detected_on_touch():
    kernel = make_kernel()
    san = FrameSanitizer()
    san.attach_kernel(kernel)
    kernel.allocate_region("victim", PageType.HEAP, 64, [0])
    assert not san.reports

    # Free the region's frames straight into the buddy, leaving the
    # extent dangling — the kernel proper would never do this.
    extent = kernel.region_extents("victim")[0]
    kernel.nodes[extent.node_id].free_ranges(extent.frames)
    kernel.touch_region("victim", 100.0)
    assert "use-after-free" in kinds(san)


def test_kernel_clean_allocate_touch_free_cycle():
    kernel = make_kernel()
    san = FrameSanitizer()
    san.attach_kernel(kernel)
    kernel.allocate_region("ok", PageType.HEAP, 64, [0])
    kernel.touch_region("ok", 100.0)
    kernel.free_region("ok")
    assert not san.reports


def test_kernel_migration_leak_is_an_ownership_race():
    kernel = make_kernel()

    def buggy_move(extent, target_node_id):
        # Mirrors GuestKernel.move_extent but "forgets" to return the
        # source frames to their node.
        target = kernel.nodes[target_node_id]
        new_frames = target.allocate_up_to(extent.pages, extent.page_type)
        kernel.lru[extent.node_id].remove(extent)
        extent.frames = new_frames
        extent.node_id = target_node_id
        kernel.lru[target_node_id].insert(extent)
        return extent.pages

    # Install the bug first so attach_kernel wraps the buggy version.
    kernel.move_extent = buggy_move
    san = FrameSanitizer()
    san.attach_kernel(kernel)

    kernel.allocate_region("migrant", PageType.HEAP, 64, [0])
    extent = kernel.region_extents("migrant")[0]
    moved = kernel.move_extent(extent, 1)
    assert moved == 64
    races = [r for r in san.reports if r.kind == "ownership-race"]
    assert races
    assert "still owned" in races[0].detail


def test_kernel_correct_migration_is_clean():
    kernel = make_kernel()
    san = FrameSanitizer()
    san.attach_kernel(kernel)
    kernel.allocate_region("migrant", PageType.HEAP, 64, [0])
    extent = kernel.region_extents("migrant")[0]
    assert kernel.move_extent(extent, 1) == 64
    assert not san.reports


def test_reconcile_flags_frames_no_owner_accounts_for():
    kernel = make_kernel()
    san = FrameSanitizer()
    san.attach_kernel(kernel)
    # Grab pages from a zone buddy without creating an extent: the shadow
    # sees the allocation but no kernel structure accounts for it.
    kernel.nodes[0].allocate_pages(32, PageType.HEAP)
    new = san.reconcile(kernel)
    assert [report.kind for report in new] == ["leak"]
    assert new[0].owner == "<unaccounted>"


def test_reconcile_clean_after_normal_activity():
    kernel = make_kernel()
    san = FrameSanitizer()
    san.attach_kernel(kernel)
    kernel.allocate_region("a", PageType.HEAP, 64, [0])
    kernel.allocate_region("b", PageType.PAGE_CACHE, 8, [1], cpu=1)
    kernel.touch_region("a", 50.0)
    kernel.free_region("b")
    assert not san.reconcile(kernel)
    assert not san.reports


# ----------------------------------------------------------------------
# Through the sim engine
# ----------------------------------------------------------------------


def test_engine_clean_run_reports_no_violations():
    config = build_config(fast_ratio=0.25, slow_gib=0.25, seed=7)
    config.sanitize = True
    result = run_experiment("nginx", "hetero-lru", epochs=3, config=config)
    assert result.sanitizer_reports == []


def test_engine_without_sanitize_has_empty_reports():
    config = build_config(fast_ratio=0.25, slow_gib=0.25, seed=7)
    result = run_experiment("nginx", "hetero-lru", epochs=2, config=config)
    assert result.sanitizer_reports == []


def test_cli_sanitize_check_exit_code(capsys):
    from repro.cli import main

    code = main(
        [
            "sanitize-check",
            "--app", "nginx",
            "--policy", "hetero-lru",
            "--epochs", "3",
            "--slow-gib", "0.25",
        ]
    )
    assert code == 0
    assert "0 violation(s)" in capsys.readouterr().out
