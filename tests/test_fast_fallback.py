"""Graceful degradation when numpy is absent, and cache-key hygiene.

``repro.sim.fast`` treats numpy as an optional accelerator (the
``fast`` pyproject extra): when it cannot be imported the module must
emit exactly one :class:`RuntimeWarning`, fall back to pure
``bytearray`` operations, and still satisfy the bit-identity oracle.
These tests simulate the numpy-less environment with an import hook so
CI covers the fallback even though the container ships numpy.

The second half pins the cache-key contract: ``fast_path`` must never
reach an :class:`ExperimentSpec` or its canonical form, because the
two paths are interchangeable for a cached result.
"""

from __future__ import annotations

import dataclasses
import importlib
import sys
import warnings

import pytest

from repro.sim.parallel import CACHE_KEY_EXCLUDED, ExperimentSpec, make_spec, run_spec

FAST_MODULE = "repro.sim.fast"


class _BlockNumpy:
    """Meta-path finder that makes ``import numpy`` fail."""

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for fallback test")
        return None


@pytest.fixture
def numpy_less_fast():
    """Reimport ``repro.sim.fast`` with numpy unimportable.

    Yields ``(module, caught_warnings)``; teardown restores the real
    numpy-backed module for the rest of the session.
    """
    saved = {
        name: module
        for name, module in sys.modules.items()
        if name == "numpy" or name.startswith("numpy.") or name == FAST_MODULE
    }
    for name in saved:
        del sys.modules[name]
    blocker = _BlockNumpy()
    sys.meta_path.insert(0, blocker)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module(FAST_MODULE)
        yield module, caught
    finally:
        sys.meta_path.remove(blocker)
        sys.modules.pop(FAST_MODULE, None)
        sys.modules.update(saved)
        importlib.import_module(FAST_MODULE)


def test_fallback_warns_exactly_once(numpy_less_fast):
    module, caught = numpy_less_fast
    runtime_warnings = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(runtime_warnings) == 1
    assert "numpy" in str(runtime_warnings[0].message)
    assert module.HAS_NUMPY is False
    assert module.FrameBitmap(64).view is None


def test_fallback_results_are_bit_identical(numpy_less_fast):
    module, _ = numpy_less_fast
    assert module.HAS_NUMPY is False
    # The engine imports repro.sim.fast lazily, so this run exercises
    # the fallback module installed by the fixture.
    spec = make_spec("redis", "hetero-lru", epochs=3, slow_gib=2.0)
    reference = dataclasses.asdict(run_spec(spec, fast_path=False))
    fallback = dataclasses.asdict(run_spec(spec, fast_path=True))
    assert fallback == reference


def test_restored_module_has_numpy_backend():
    module = importlib.import_module(FAST_MODULE)
    assert module.HAS_NUMPY is True
    assert module.FrameBitmap(64).view is not None


def test_fast_path_never_reaches_the_cache_key():
    field_names = {field.name for field in dataclasses.fields(ExperimentSpec)}
    assert "fast_path" not in field_names
    spec = make_spec("redis", "hetero-lru", epochs=2, slow_gib=2.0)
    assert "fast_path" not in spec.canonical()
    assert "fast_path" in CACHE_KEY_EXCLUDED


def test_both_paths_may_serve_the_same_spec():
    spec = make_spec("redis", "hetero-lru", epochs=2, slow_gib=2.0)
    via_fast = dataclasses.asdict(run_spec(spec, fast_path=True))
    via_reference = dataclasses.asdict(run_spec(spec, fast_path=None))
    assert via_fast == via_reference
