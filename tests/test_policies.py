"""Placement policies: registry, baselines, and the HeteroOS ladder."""

import random

import pytest

from conftest import make_kernel
from repro.core import (
    CoordinatedPolicy,
    HeapIoSlabOdPolicy,
    HeapOdPolicy,
    HeteroLruPolicy,
    available_policies,
    make_policy,
)
from repro.core.heap_io_slab_od import FASTMEM_ELIGIBLE
from repro.core.policy import PlacementPolicy, PolicyBinding, register_policy
from repro.errors import ConfigurationError
from repro.mem.extent import ExtentState, PageType


def bind(policy, kernel=None):
    kernel = kernel or make_kernel()
    policy.bind(PolicyBinding(kernel=kernel, rng=random.Random(1)))
    return kernel


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_contains_all_paper_policies():
    names = set(available_policies())
    assert {
        "slowmem-only", "fastmem-only", "random", "numa-preferred",
        "vmm-exclusive", "heap-od", "heap-io-slab-od", "hetero-lru",
        "hetero-coordinated",
    } <= names


def test_make_policy_unknown_name():
    with pytest.raises(ConfigurationError):
        make_policy("not-a-policy")


def test_register_duplicate_rejected():
    with pytest.raises(ConfigurationError):
        register_policy("heap-od")(HeapOdPolicy)


def test_unbound_policy_rejects_decisions():
    policy = make_policy("heap-od")
    with pytest.raises(ConfigurationError):
        policy.node_preference(PageType.HEAP)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------

def test_slowmem_only_never_names_fast_nodes():
    policy = make_policy("slowmem-only")
    bind(policy)
    assert policy.node_preference(PageType.HEAP) == [1]


def test_fastmem_only_prefers_fast_and_needs_unlimited():
    policy = make_policy("fastmem-only")
    assert policy.requires_unlimited_fast
    bind(policy)
    assert policy.node_preference(PageType.HEAP)[0] == 0


def test_random_policy_is_seeded_and_capacity_weighted():
    kernel = make_kernel(fast_mib=16, slow_mib=256)
    policy = make_policy("random")
    bind(policy, kernel)
    picks = [
        policy.node_preference(PageType.HEAP)[0] for _ in range(300)
    ]
    # Slow node is 16x larger: it must win most of the draws.
    assert picks.count(1) > picks.count(0) > 0
    # Same seed -> same sequence.
    policy2 = make_policy("random")
    bind(policy2, make_kernel(fast_mib=16, slow_mib=256))
    picks2 = [
        policy2.node_preference(PageType.HEAP)[0] for _ in range(300)
    ]
    assert picks == picks2


def test_numa_preferred_reserves_fast_slice():
    kernel = make_kernel()
    fast_total = kernel.nodes[0].total_pages
    policy = make_policy("numa-preferred")
    bind(policy, kernel)
    assert kernel.nodes[0].free_pages == pytest.approx(
        fast_total * 0.8, abs=2
    )
    assert policy.node_preference(PageType.PAGE_CACHE)[0] == 0


def test_numa_preferred_fraction_validation():
    from repro.core.baselines import NumaPreferredPolicy

    with pytest.raises(ConfigurationError):
        NumaPreferredPolicy(reserved_fraction=1.5)


# ----------------------------------------------------------------------
# Heap-OD / Heap-IO-Slab-OD
# ----------------------------------------------------------------------

def test_heap_od_routes_only_heap_to_fast():
    policy = make_policy("heap-od")
    bind(policy)
    assert policy.node_preference(PageType.HEAP)[0] == 0
    for page_type in (PageType.PAGE_CACHE, PageType.SLAB,
                      PageType.NETWORK_BUFFER):
        assert policy.node_preference(page_type)[0] == 1


def test_heap_io_slab_od_routes_all_eligible_to_fast():
    policy = make_policy("heap-io-slab-od")
    bind(policy)
    for page_type in FASTMEM_ELIGIBLE:
        assert policy.node_preference(page_type)[0] == 0
    assert policy.node_preference(PageType.PAGE_TABLE)[0] == 1
    assert policy.node_preference(PageType.DMA)[0] == 1


def test_budgeting_inactive_while_fast_is_plentiful():
    policy = HeapIoSlabOdPolicy()
    kernel = bind(policy)
    kernel.begin_epoch(0)
    policy.on_epoch_start(0)
    assert not policy._budgeting_active


def test_budgeting_starves_low_miss_types_under_scarcity():
    policy = HeapIoSlabOdPolicy()
    kernel = bind(policy)
    # Exhaust FastMem and create a demand history where the page cache
    # starved while the heap was served.
    kernel.begin_epoch(0)
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("heap", PageType.HEAP, fast, [0])
    kernel.allocate_region("pc", PageType.PAGE_CACHE, 2000, [1])
    kernel.epoch_stats[PageType.PAGE_CACHE].requested_pages = 2000
    kernel.epoch_stats[PageType.PAGE_CACHE].fast_granted_pages = 0
    policy.on_epoch_end(0)
    kernel.begin_epoch(1)
    policy.on_epoch_start(1)
    assert policy._budgeting_active
    # The starving page cache keeps its FastMem claim; a type with zero
    # recorded demand gets only leftovers.
    assert policy._budgets[PageType.PAGE_CACHE] >= 0
    policy.on_allocated(PageType.PAGE_CACHE,
                        policy._budgets[PageType.PAGE_CACHE] + 1,
                        policy._budgets[PageType.PAGE_CACHE] + 1)
    assert policy.node_preference(PageType.PAGE_CACHE)[0] == 1


# ----------------------------------------------------------------------
# HeteroOS-LRU
# ----------------------------------------------------------------------

def test_hetero_lru_demotes_inactive_fast_pages_under_pressure():
    policy = HeteroLruPolicy(fast_free_target=0.25)
    kernel = bind(policy)
    kernel.begin_epoch(0)
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    (hot,) = kernel.allocate_region("hot", PageType.HEAP, fast, [0])
    kernel.touch_region("hot", 0.0)
    # Never touched again: the aging scan turns it inactive, pressure
    # demotes it to SlowMem.
    for epoch in range(1, 5):
        kernel.begin_epoch(epoch)
        policy.on_epoch_end(epoch)
    assert policy.pages_demoted > 0
    assert kernel.nodes[0].free_pages > 0


def test_hetero_lru_drops_completed_io_from_fast():
    policy = HeteroLruPolicy(fast_free_target=0.9)  # always pressured
    kernel = bind(policy)
    kernel.begin_epoch(0)
    (io,) = kernel.allocate_region("io", PageType.PAGE_CACHE, 512, [0])
    kernel.page_cache.complete_io(io)  # fires the eager hook
    policy.on_epoch_end(0)
    # Dropped, not migrated: no copy cost, pages simply freed.
    assert io.extent_id not in kernel.extents
    assert policy.pages_demoted == 0 or policy.demote_cost_ns >= 0


def test_hetero_lru_no_demotion_without_pressure():
    policy = HeteroLruPolicy(fast_free_target=0.1)
    kernel = bind(policy)
    kernel.begin_epoch(0)
    kernel.allocate_region("small", PageType.HEAP, 128, [0])
    kernel.touch_region("small", 10_000.0)
    cost = policy.on_epoch_end(0)
    assert policy.pages_demoted == 0
    assert cost == 0.0


def test_hetero_lru_demotes_for_denser_incoming():
    policy = HeteroLruPolicy()
    kernel = bind(policy)
    kernel.begin_epoch(0)
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("lukewarm", PageType.HEAP, fast, [0])
    kernel.touch_region("lukewarm", float(fast) * 3)  # density ~3
    policy.on_epoch_end(0)
    kernel.begin_epoch(1)
    kernel.allocate_region("blazing", PageType.NETWORK_BUFFER, 1024, [0, 1])
    kernel.touch_region("lukewarm", float(fast) * 3)
    kernel.touch_region("blazing", 1024 * 200.0)  # density 200
    policy.on_epoch_end(1)
    assert policy.pages_demoted > 0


# ----------------------------------------------------------------------
# Coordinated
# ----------------------------------------------------------------------

def test_coordinated_requires_hypervisor_binding():
    policy = CoordinatedPolicy()
    with pytest.raises(ConfigurationError):
        bind(policy)  # kernel-only binding has no channel/tracker


def test_coordinated_interval_validation():
    with pytest.raises(ConfigurationError):
        CoordinatedPolicy(min_interval_ms=0)
    with pytest.raises(ConfigurationError):
        CoordinatedPolicy(min_interval_ms=100, max_interval_ms=50)


def test_mechanism_ladder_is_subclass_chain():
    assert issubclass(HeapIoSlabOdPolicy, HeapOdPolicy)
    assert issubclass(HeteroLruPolicy, HeapIoSlabOdPolicy)
    assert issubclass(CoordinatedPolicy, HeteroLruPolicy)
    assert not issubclass(HeapOdPolicy, HeteroLruPolicy)
