"""The Figure 13 multi-VM scenario helpers and dynamics (scaled down
where possible; the full driver runs in the benchmark suite)."""

import pytest

from repro.experiments.sharing import (
    fig13_devices,
    fig13_vmspecs,
    run_fig13,
)
from repro.guestos.numa import NodeTier
from repro.sim.multi_vm import MultiVmSimulation
from repro.units import GIB
from repro.vmm.drf import WeightedDrf
from repro.vmm.sharing import MaxMinSharing


def test_fig13_machine_matches_paper():
    devices = fig13_devices()
    assert devices[NodeTier.FAST].capacity_bytes == 4 * GIB
    assert devices[NodeTier.SLOW].capacity_bytes == 8 * GIB
    assert devices[NodeTier.SLOW].load_latency_ns > devices[
        NodeTier.FAST
    ].load_latency_ns


def test_fig13_resource_vectors_match_paper():
    specs = {spec.name: spec for spec in fig13_vmspecs("heap-od")}
    graphchi = specs["graphchi-vm"].reservations
    metis = specs["metis-vm"].reservations
    # <2*1GB, 1*4GB> and <2*3GB, 1*4GB> (Section 5.5).
    assert graphchi[NodeTier.FAST].min_pages == GIB // 4096
    assert metis[NodeTier.FAST].min_pages == 3 * GIB // 4096
    assert graphchi[NodeTier.SLOW].min_pages == 4 * GIB // 4096
    # Boot minimums exactly fill the machine: all growth is contended.
    total_fast = sum(
        spec.reservations[NodeTier.FAST].min_pages
        for spec in specs.values()
    )
    assert total_fast == 4 * GIB // 4096


def test_maxmin_lets_the_hungry_vm_take_idle_slowmem():
    sim = MultiVmSimulation(
        fig13_devices(), fig13_vmspecs("heap-od"),
        sharing_policy=MaxMinSharing(),
    )
    results = sim.run(40)
    domains = {d.name: d for d in sim.hypervisor.domains.values()}
    # Metis grew past its 4 GB SlowMem minimum at GraphChi's expense.
    metis_slow = domains["metis-vm"].pages(NodeTier.SLOW)
    graphchi_slow = domains["graphchi-vm"].pages(NodeTier.SLOW)
    assert metis_slow > 4 * GIB // 4096
    assert graphchi_slow < 4 * GIB // 4096
    assert results["metis-vm"].swap_pages_out == 0


def test_drf_protects_the_reservation():
    sim = MultiVmSimulation(
        fig13_devices(), fig13_vmspecs("heap-od"),
        sharing_policy=WeightedDrf(),
    )
    sim.run(40)
    domains = {d.name: d for d in sim.hypervisor.domains.values()}
    # Under DRF nobody digs into GraphChi's reserved SlowMem.
    assert domains["graphchi-vm"].pages(NodeTier.SLOW) >= 4 * GIB // 4096


def test_run_fig13_driver_rows():
    rows = run_fig13(epochs=30)
    by_vm = {row["vm"]: row for row in rows}
    assert set(by_vm) == {"graphchi-vm", "metis-vm", "TOTAL-runtime-sec"}
    for vm in ("graphchi-vm", "metis-vm"):
        assert "coordinated(weighted-drf)" in by_vm[vm]
        assert "single-vm-coordinated" in by_vm[vm]
