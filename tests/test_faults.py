"""repro.faults: deterministic fault injection and graceful degradation.

The contracts under test (docs/resilience.md):

* no-perturbation — ``FaultPlan.none()`` is field-by-field identical to
  running with no plan, for every registered policy;
* determinism — a fixed (plan, seed) reproduces the same ``RunResult``
  bit-for-bit, including across serial/parallel/cached execution;
* graceful degradation — every injected fault rolls back cleanly or
  downgrades to slower-but-correct (invariants hold, sanitizer clean),
  never an unhandled exception.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import SimConfig
from repro.core import available_policies, make_policy
from repro.errors import ConfigurationError, SwapWriteError
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.guestos.swap import SwapDevice
from repro.mem.extent import PageType
from repro.obs import Telemetry
from repro.sim.engine import SimulationEngine
from repro.units import MIB
from repro.vmm.channel import CoordinationChannel
from repro.vmm.migration import MigrationEngine
from repro.workloads.base import RegionSpec, StatisticalWorkload


def pressured_workload(pages: int = 20_000) -> StatisticalWorkload:
    """Exceeds tiny FastMem so scans, migrations, and swap all engage."""
    return StatisticalWorkload(
        name="pressured",
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=20_000.0,
        resident=[
            RegionSpec("hot", PageType.HEAP, pages // 2, 0.8, 1.0),
            RegionSpec("warm", PageType.HEAP, pages, 0.5, 0.5,
                       alloc_epoch=1),
            RegionSpec("cold", PageType.HEAP, pages, 0.4, 0.25,
                       alloc_epoch=2, access_period=3),
        ],
    )


def run_once(
    policy: str,
    plan: "FaultPlan | None" = None,
    epochs: int = 6,
    sanitize: bool = False,
    telemetry: "Telemetry | None" = None,
) -> tuple:
    config = SimConfig(
        fast_capacity_bytes=16 * MIB,
        slow_capacity_bytes=256 * MIB,
        sanitize=sanitize,
        fault_plan=plan,
    )
    engine = SimulationEngine(
        config, pressured_workload(), make_policy(policy),
        telemetry=telemetry,
    )
    return engine.run(epochs), engine


def plan_of(*kinds: str, seed: int = 11, probability: float = 1.0) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        faults=tuple(
            FaultSpec(kind, probability=probability) for kind in kinds
        ),
    )


def injector_of(*kinds: str, seed: int = 11) -> FaultInjector:
    return FaultInjector(plan_of(*kinds, seed=seed))


# ----------------------------------------------------------------------
# Plan validation and serialization
# ----------------------------------------------------------------------


def test_spec_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        FaultSpec("cosmic-ray")


def test_spec_rejects_bad_probability():
    with pytest.raises(ConfigurationError):
        FaultSpec("channel-drop", probability=0.0)
    with pytest.raises(ConfigurationError):
        FaultSpec("channel-drop", probability=1.5)


def test_spec_rejects_empty_window():
    with pytest.raises(ConfigurationError):
        FaultSpec("channel-drop", start_epoch=3, end_epoch=3)


def test_spec_rejects_derate_factors_on_other_kinds():
    with pytest.raises(ConfigurationError):
        FaultSpec("channel-drop", latency_factor=2.0)
    FaultSpec("device-derate", latency_factor=2.0)  # fine


def test_plan_round_trips_through_canonical():
    plan = FaultPlan(
        seed=3,
        faults=(
            FaultSpec("device-derate", probability=0.5, start_epoch=1,
                      end_epoch=4, latency_factor=2.0),
            FaultSpec("swap-write-error", probability=0.25),
        ),
    )
    assert FaultPlan.from_dict(plan.canonical()) == plan
    assert plan.kinds() == ("device-derate", "swap-write-error")


def test_plan_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_dict({"seed": 1, "chaos": True})
    with pytest.raises(ConfigurationError):
        FaultPlan.from_dict({"faults": [{"kind": "channel-drop",
                                         "severity": 9}]})


def test_none_plan_is_empty_and_hashable():
    assert FaultPlan.none().empty
    assert hash(FaultPlan.none()) == hash(FaultPlan())
    {FaultPlan.none(): "plans must be dict keys"}


# ----------------------------------------------------------------------
# Injector determinism
# ----------------------------------------------------------------------


def test_injector_same_seed_same_draws():
    draws_a = [injector_of("channel-drop", seed=5).fires("channel-drop")
               for _ in range(1)]
    inj_a = FaultInjector(plan_of("channel-drop", seed=5, probability=0.5))
    inj_b = FaultInjector(plan_of("channel-drop", seed=5, probability=0.5))
    seq_a = [inj_a.fires("channel-drop") is not None for _ in range(50)]
    seq_b = [inj_b.fires("channel-drop") is not None for _ in range(50)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)
    assert draws_a  # silence unused-variable linters


def test_injector_streams_are_independent_per_kind():
    """Adding a second kind must not shift the first kind's draws."""
    alone = FaultInjector(plan_of("channel-drop", seed=9, probability=0.5))
    both = FaultInjector(
        FaultPlan(
            seed=9,
            faults=(
                FaultSpec("channel-drop", probability=0.5),
                FaultSpec("swap-write-error", probability=0.5),
            ),
        )
    )
    seq_alone = []
    seq_both = []
    for _ in range(50):
        seq_alone.append(alone.fires("channel-drop") is not None)
        both.fires("swap-write-error")  # interleave the other stream
        seq_both.append(both.fires("channel-drop") is not None)
    assert seq_alone == seq_both


def test_injector_respects_epoch_windows():
    inj = FaultInjector(
        FaultPlan(
            seed=1,
            faults=(FaultSpec("balloon-refuse", start_epoch=2,
                              end_epoch=4),),
        )
    )
    fired_at = []
    for epoch in range(6):
        inj.advance_epoch(epoch)
        if inj.fires("balloon-refuse") is not None:
            fired_at.append(epoch)
    assert fired_at == [2, 3]


def test_injector_counts_and_events():
    inj = injector_of("channel-drop")
    inj.advance_epoch(3)
    assert inj.fires("channel-drop") is not None
    assert inj.counts == {"channel-drop": 1}
    events = inj.drain_events()
    assert events == [
        {"name": "fault-channel-drop", "source": "vmm.channel", "epoch": 3}
    ]
    assert inj.drain_events() == []


# ----------------------------------------------------------------------
# Component degradations
# ----------------------------------------------------------------------


def test_channel_drop_empties_report():
    channel = CoordinationChannel(domain_id=0)
    channel.faults = injector_of("channel-drop")
    channel.vmm_publish_hot([1, 2, 3])
    assert channel.hot_report == []


def test_channel_duplicate_doubles_report():
    channel = CoordinationChannel(domain_id=0)
    channel.faults = injector_of("channel-duplicate")
    channel.vmm_publish_hot([1, 2])
    assert channel.hot_report == [1, 2, 1, 2]


def test_swap_write_error_leaves_device_untouched():
    swap = SwapDevice(capacity_pages=1024)
    swap.faults = injector_of("swap-write-error")
    with pytest.raises(SwapWriteError):
        swap.swap_out(64)
    assert swap.used_pages == 0


def test_kernel_shrink_degrades_on_swap_write_error(kernel):
    kernel.swap.faults = injector_of("swap-write-error")
    slow = kernel.nodes[1]
    kernel.begin_epoch(0)
    kernel.allocate_region(
        "cold", PageType.HEAP, slow.free_pages_for(PageType.HEAP), [1]
    )
    already_free = slow.free_pages
    freed = kernel.shrink_node(1, already_free + 1024)
    # Every write failed: no extra pages reclaimed beyond the already
    # free ones, the retry penalty is charged, nothing was perturbed.
    assert freed == already_free
    assert kernel.pending_cost_ns > 0
    assert kernel.swap.used_pages == 0
    kernel.check_invariants()


def test_scan_lost_returns_empty_report(kernel):
    from repro.vmm.hotness import HotnessTracker

    kernel.begin_epoch(0)
    extents = kernel.allocate_region("r", PageType.HEAP, 2048, [0])
    for extent in extents:
        extent.record_access(0, 100.0)
    tracker = HotnessTracker()
    tracker.faults = injector_of("scan-lost")
    report = tracker.scan(extents)
    assert report.pages_scanned == 0
    assert report.cost_ns == 0
    assert report.hot_extents == []


def test_scan_stale_replays_previous_report(kernel):
    from repro.vmm.hotness import HotnessTracker

    kernel.begin_epoch(0)
    extents = kernel.allocate_region("r", PageType.HEAP, 2048, [0])
    tracker = HotnessTracker()
    tracker.faults = injector_of("scan-stale")
    for extent in extents:
        extent.record_access(0, 50.0)
    first = tracker.scan(extents)  # no previous report: runs normally
    assert first.pages_scanned > 0
    stale = tracker.scan(extents)  # replays the first, same cost
    assert stale.pages_scanned == first.pages_scanned
    assert stale.cost_ns == first.cost_ns
    assert [e.extent_id for e in stale.hot_extents] == [
        e.extent_id for e in first.hot_extents
    ]


def test_migration_abort_rolls_back_all_moves(kernel):
    kernel.begin_epoch(0)
    extents = kernel.allocate_region("warm", PageType.HEAP, 4096, [1])
    engine = MigrationEngine()
    engine.faults = injector_of("migration-abort")
    report = engine.migrate(extents, 0, kernel)
    # Everything copied, then copied back: all pages end up failed, the
    # cost is paid, the aborted pass never reaches the running totals.
    assert report.pages_moved == 0
    assert report.pages_failed >= 4096
    assert report.cost_ns > 0
    assert engine.total.pages_moved == 0
    assert engine.in_flight is None
    assert all(extent.node_id == 1 for extent in extents)
    kernel.check_invariants()


def test_balloon_refuse_run_completes():
    result, engine = run_once("hetero-coordinated",
                              plan_of("balloon-refuse"), epochs=6)
    assert result.stats.epochs == 6
    engine.kernel.check_invariants()


# ----------------------------------------------------------------------
# No-perturbation and whole-run determinism
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", available_policies())
def test_none_plan_is_pinned_identical(policy):
    base, _ = run_once(policy, plan=None, epochs=4)
    pinned, engine = run_once(policy, plan=FaultPlan.none(), epochs=4)
    assert engine.faults is None  # the injector is never constructed
    assert dataclasses.asdict(base) == dataclasses.asdict(pinned)


def test_faulty_run_is_deterministic():
    plan = FaultPlan(
        seed=23,
        faults=(
            FaultSpec("channel-drop", probability=0.4),
            FaultSpec("migration-abort", probability=0.3),
            FaultSpec("device-derate", probability=0.5,
                      latency_factor=2.0, bandwidth_factor=1.5),
            FaultSpec("swap-write-error", probability=0.5),
        ),
    )
    first, _ = run_once("hetero-lru", plan)
    second, _ = run_once("hetero-lru", plan)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    assert first.fault_counts  # something actually fired


def test_fault_counts_surface_in_result():
    result, _ = run_once("hetero-lru", plan_of("device-derate"))
    assert result.fault_counts.get("device-derate") == 6  # one per epoch


def test_fault_events_reach_the_timeline():
    telemetry = Telemetry()
    result, _ = run_once(
        "hetero-lru", plan_of("device-derate"), telemetry=telemetry
    )
    names = [
        event["name"]
        for sample in (result.timeline or [])
        for event in sample.events
    ]
    assert "fault-device-derate" in names


def test_derate_slows_the_run_down():
    base, _ = run_once("hetero-lru", plan=None)
    derated, _ = run_once(
        "hetero-lru",
        FaultPlan(
            seed=1,
            faults=(FaultSpec("device-derate", latency_factor=4.0,
                              bandwidth_factor=4.0),),
        ),
    )
    assert derated.stats.runtime_ns > base.stats.runtime_ns


# ----------------------------------------------------------------------
# Chaos property test
# ----------------------------------------------------------------------


def random_plan(rng: random.Random) -> FaultPlan:
    specs = []
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(FAULT_KINDS)
        start = rng.randint(0, 3)
        end = rng.choice([None, start + rng.randint(1, 4)])
        kwargs = {}
        if kind == "device-derate":
            kwargs["latency_factor"] = rng.choice([1.5, 2.0, 4.0])
            kwargs["bandwidth_factor"] = rng.choice([1.0, 2.0, 3.0])
        specs.append(
            FaultSpec(
                kind,
                probability=rng.choice([0.1, 0.25, 0.5, 1.0]),
                start_epoch=start,
                end_epoch=end,
                **kwargs,
            )
        )
    return FaultPlan(seed=rng.randint(0, 2**20), faults=tuple(specs))


def test_chaos_random_plans_degrade_gracefully():
    """~20 seeded random plans: every run completes with invariants and
    a clean sanitizer, and every rerun is bit-for-bit identical."""
    rng = random.Random(2017)  # the paper's year; any fixed seed works
    policies = ("hetero-lru", "hetero-coordinated", "heap-od")
    total_fired = 0
    for case in range(20):
        plan = random_plan(rng)
        policy = policies[case % len(policies)]
        result, engine = run_once(policy, plan, sanitize=True)
        assert result.stats.epochs == 6, (case, plan)
        engine.kernel.check_invariants()
        assert result.sanitizer_reports == [], (case, plan)
        rerun, _ = run_once(policy, plan, sanitize=True)
        assert dataclasses.asdict(result) == dataclasses.asdict(rerun), (
            case, plan,
        )
        total_fired += sum(result.fault_counts.values())
    assert total_fired > 0  # the chaos actually did something
