"""Radix page table."""

import pytest

from repro.errors import AllocationError
from repro.mem.pagetable import FANOUT, PageTable


def test_map_walk_unmap_roundtrip():
    table = PageTable()
    table.map_range(100, 10, extent_id=7)
    assert table.mapped_pages == 10
    entry = table.walk(105)
    assert entry is not None and entry.extent_id == 7
    table.unmap_range(100, 10)
    assert table.mapped_pages == 0
    assert table.walk(105) is None


def test_double_map_rejected():
    table = PageTable()
    table.map_range(0, 4, extent_id=1)
    with pytest.raises(AllocationError):
        table.map_range(2, 4, extent_id=2)


def test_unmap_of_unmapped_rejected():
    table = PageTable()
    with pytest.raises(AllocationError):
        table.unmap_range(50, 1)


def test_touch_sets_access_and_dirty_bits():
    table = PageTable()
    table.map_range(10, 2, extent_id=1)
    table.touch(10)
    table.touch(11, write=True)
    assert table.walk(10).accessed and not table.walk(10).dirty
    assert table.walk(11).accessed and table.walk(11).dirty


def test_touch_unmapped_rejected():
    table = PageTable()
    with pytest.raises(AllocationError):
        table.touch(1)


def test_scan_and_clear_counts_and_resets():
    table = PageTable()
    table.map_range(0, 8, extent_id=1)
    for vpn in (1, 3, 5):
        table.touch(vpn)
    assert table.scan_and_clear(0, 8) == 3
    # Bits were cleared: nothing accessed now.
    assert table.scan_and_clear(0, 8) == 0


def test_scan_skips_holes():
    table = PageTable()
    table.map_range(0, 2, extent_id=1)
    table.map_range(6, 2, extent_id=2)
    table.touch(0)
    table.touch(7)
    assert table.scan_and_clear(0, 8) == 2


def test_cross_level_mapping():
    # Pages straddling a radix boundary (level fanout) map correctly.
    table = PageTable()
    boundary = FANOUT  # first level-3 index rollover
    table.map_range(boundary - 2, 4, extent_id=9)
    for vpn in range(boundary - 2, boundary + 2):
        assert table.walk(vpn).extent_id == 9
    assert table.interior_nodes > 1


def test_invalid_counts_rejected():
    table = PageTable()
    with pytest.raises(AllocationError):
        table.map_range(0, 0, extent_id=1)
    with pytest.raises(AllocationError):
        table.unmap_range(0, -1)
