"""Section 4.3 extension policies: write-aware NVM placement,
multi-level ladders, bare-metal native mode."""

import pytest

from conftest import make_kernel
from repro.core import make_policy
from repro.core.multilevel import MultiLevelPolicy
from repro.core.native import NativeCoordinatedPolicy
from repro.core.nvm_write_aware import NvmWriteAwarePolicy
from repro.core.policy import PolicyBinding
from repro.guestos.kernel import GuestKernel
from repro.guestos.numa import NodeTier, build_node
from repro.hw.memdevice import DRAM, NVM_PCM, STACKED_3D
from repro.mem.extent import PageType
from repro.units import MIB, pages_of_bytes


def bind(policy, kernel=None):
    kernel = kernel or make_kernel()
    policy.bind(PolicyBinding(kernel=kernel))
    return kernel


def make_three_tier_kernel() -> GuestKernel:
    base = 0
    nodes = {}
    for node_id, (tier, device, mib) in enumerate(
        [
            (NodeTier.FAST, STACKED_3D, 16),
            (NodeTier.MEDIUM, DRAM, 64),
            (NodeTier.SLOW, NVM_PCM, 256),
        ]
    ):
        nodes[node_id] = build_node(
            node_id, tier, device.with_capacity(mib * MIB), base
        )
        base += pages_of_bytes(mib * MIB)
    return GuestKernel(nodes, cpus=2, balloon=None)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_extension_policies_registered():
    from repro.core import available_policies

    names = set(available_policies())
    assert {"nvm-write-aware", "multi-level", "hetero-native"} <= names


# ----------------------------------------------------------------------
# Write temperature plumbing
# ----------------------------------------------------------------------

def test_write_temperature_tracked_separately(kernel):
    kernel.begin_epoch(0)
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 10, [0])
    kernel.touch_region("r", 1000.0, writes=900.0)
    assert extent.write_temperature == pytest.approx(900.0)
    assert extent.temperature == pytest.approx(1000.0)
    assert extent.dirty


def test_write_temperature_split_proportionally(kernel):
    kernel.begin_epoch(0)
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 100, [0])
    kernel.touch_region("r", 1000.0, writes=500.0)
    sibling = kernel.split_extent(extent, 40)
    assert extent.write_temperature == pytest.approx(200.0)
    assert sibling.write_temperature == pytest.approx(300.0)


# ----------------------------------------------------------------------
# NvmWriteAwarePolicy
# ----------------------------------------------------------------------

def test_write_aware_promotes_write_heavy_slow_extents():
    policy = NvmWriteAwarePolicy(scan_interval_epochs=1)
    kernel = bind(policy)
    kernel.begin_epoch(0)
    kernel.allocate_region("log", PageType.HEAP, 512, [1])
    for epoch in range(4):
        kernel.begin_epoch(epoch)
        kernel.touch_region("log", 5000.0, writes=4500.0)
        policy.on_epoch_end(epoch)
    assert policy.pages_promoted_for_writes == 512
    (extent,) = kernel.region_extents("log")
    assert kernel.nodes[extent.node_id].is_fastmem


def test_write_aware_leaves_read_heavy_pages_on_slow():
    policy = NvmWriteAwarePolicy(scan_interval_epochs=1)
    kernel = bind(policy)
    for epoch in range(4):
        kernel.begin_epoch(epoch)
        if epoch == 0:
            kernel.allocate_region("reads", PageType.HEAP, 512, [1])
        kernel.touch_region("reads", 5000.0, writes=10.0)
        policy.on_epoch_end(epoch)
    assert policy.pages_promoted_for_writes == 0
    (extent,) = kernel.region_extents("reads")
    assert not kernel.nodes[extent.node_id].is_fastmem


def test_write_aware_charges_rw_scan_cost():
    policy = NvmWriteAwarePolicy(scan_interval_epochs=1)
    kernel = bind(policy)
    kernel.begin_epoch(0)
    kernel.allocate_region("r", PageType.HEAP, 256, [1])
    kernel.touch_region("r", 100.0, writes=10.0)
    overhead = policy.on_epoch_end(0)
    assert overhead > 0
    assert policy.rw_scan_cost_ns > 0


def test_write_aware_displaces_only_cooler_adjusted_density():
    """A write-hot candidate displaces read-lukewarm FastMem pages but
    not read-blazing ones."""
    policy = NvmWriteAwarePolicy(scan_interval_epochs=1)
    kernel = bind(policy, make_kernel(fast_mib=2, slow_mib=64))
    fast_pages = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.begin_epoch(0)
    kernel.allocate_region("blazing", PageType.HEAP, fast_pages, [0])
    kernel.allocate_region("log", PageType.HEAP, 256, [1])
    for epoch in range(4):
        kernel.begin_epoch(epoch)
        kernel.touch_region("blazing", 500_000.0, writes=1000.0)
        kernel.touch_region("log", 3000.0, writes=2800.0)
        policy.on_epoch_end(epoch)
    # log's adjusted density (~3x write weight on PCM) is far below the
    # blazing read set's: no displacement happens.
    (blazing,) = kernel.region_extents("blazing")
    assert kernel.nodes[blazing.node_id].is_fastmem


# ----------------------------------------------------------------------
# MultiLevelPolicy
# ----------------------------------------------------------------------

def test_multilevel_preference_walks_tiers_fastest_first():
    policy = MultiLevelPolicy()
    kernel = make_three_tier_kernel()
    policy.bind(PolicyBinding(kernel=kernel))
    assert policy.node_preference(PageType.HEAP) == [0, 1, 2]
    assert policy.node_preference(PageType.DMA)[0] != 0


def test_multilevel_demotes_heap_one_tier_at_a_time():
    policy = MultiLevelPolicy(fast_free_target=0.5)
    kernel = make_three_tier_kernel()
    policy.bind(PolicyBinding(kernel=kernel))
    kernel.begin_epoch(0)
    fast_pages = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("idle", PageType.HEAP, fast_pages, [0])
    kernel.touch_region("idle", 1.0)
    for epoch in range(1, 5):
        kernel.begin_epoch(epoch)
        policy.on_epoch_end(epoch)
    # Idle heap stepped FAST -> MEDIUM (not straight to SLOW).
    placements = {e.node_id for e in kernel.region_extents("idle")}
    assert 1 in placements
    assert 2 not in placements


def test_multilevel_drops_completed_io_instead_of_stepping():
    policy = MultiLevelPolicy(fast_free_target=0.9)
    kernel = make_three_tier_kernel()
    policy.bind(PolicyBinding(kernel=kernel))
    kernel.begin_epoch(0)
    (io,) = kernel.allocate_region("io", PageType.PAGE_CACHE, 64, [0])
    kernel.page_cache.complete_io(io)
    policy.on_epoch_end(0)
    assert io.extent_id not in kernel.extents  # dropped, not migrated


def test_multilevel_on_two_tier_guest_degenerates_gracefully():
    policy = MultiLevelPolicy()
    kernel = bind(policy)
    kernel.begin_epoch(0)
    kernel.allocate_region("r", PageType.HEAP, 64, [0])
    assert policy.on_epoch_end(0) >= 0.0


# ----------------------------------------------------------------------
# NativeCoordinatedPolicy
# ----------------------------------------------------------------------

def test_native_binds_without_hypervisor():
    policy = NativeCoordinatedPolicy()
    bind(policy)  # must not raise (coordinated would)


def test_native_keeps_its_own_counters():
    policy = NativeCoordinatedPolicy()
    bind(policy)
    policy.on_llc_sample(100.0, 1e6)
    policy.on_llc_sample(150.0, 1e6)
    assert policy.counters.llc_miss_delta() == pytest.approx(0.5)


def test_native_promotes_hot_slow_heap():
    policy = NativeCoordinatedPolicy(initial_interval_ms=50.0)
    kernel = bind(policy)
    kernel.begin_epoch(0)
    kernel.allocate_region("hot", PageType.HEAP, 1024, [1])
    for epoch in range(8):
        kernel.begin_epoch(epoch)
        kernel.touch_region("hot", 1024 * 50.0)
        policy.on_llc_sample(1000.0, 1e6)
        policy.on_epoch_end(epoch)
    assert policy.pages_migrated > 0
    placements = {e.node_id for e in kernel.region_extents("hot")}
    assert 0 in placements


def test_native_interval_adapts_with_llc_misses():
    policy = NativeCoordinatedPolicy(initial_interval_ms=200.0)
    bind(policy)
    policy.on_llc_sample(100.0, 1e6)
    policy.on_llc_sample(50.0, 1e6)  # falling misses
    policy.on_epoch_end(0)
    assert policy.interval_ms > 200.0
