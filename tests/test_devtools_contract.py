"""Meta-tests: each heterocontract rule demonstrably fires.

A contract checker that never fires is indistinguishable from one that
checks nothing, so every rule gets the same treatment the effect
certifier got in test_effect_clean.py: copy the real package, seed one
specific contract drift with an anchored string replacement (the
assert on the anchor count makes a silently-moved anchor a test
failure, not a silent no-op), re-run :class:`ContractRules`, and
assert the matching rule reports the drifted name.  The seeded drifts
are exactly the regressions the rules were built for:

* dropping a field from ``ExperimentSpec.canonical`` (a cache-key
  collision in waiting) -> ``contract-spec-field``;
* adding a ``RunStats`` counter no epoch sample feeds (a number that
  can only ever read zero) -> ``contract-sample-sum``;
* declaring a fault kind that no component ever fires (dead chaos
  coverage) -> ``contract-fault-kind``;
* writing a module global from the telemetry plane (breaks the PR 4
  no-perturbation contract) -> ``contract-obs-pure``;
* unregistering a workload factory (silently unreachable from the
  CLI) -> ``contract-registry``.
"""

from __future__ import annotations

import pathlib
import shutil

import repro
from repro.devtools.contract import ContractRules, contract_rule_metadata
from repro.devtools.effect import EffectAnalysis
from repro.devtools.flow import ProjectIndex

PACKAGE_DIR = pathlib.Path(repro.__file__).parent

CONTRACT_RULE_IDS = {
    "contract-spec-field",
    "contract-sample-sum",
    "contract-fault-kind",
    "contract-obs-pure",
    "contract-registry",
    "contract-fast-mirror",
}


def _seeded_findings(tmp_path, edits, with_analysis=False):
    """Contract findings over a package copy with ``edits`` applied.

    ``edits`` is a list of ``(relpath, anchor, replacement)``; each
    anchor must occur exactly once so a refactor that moves it breaks
    the test loudly instead of turning it into a no-op.
    """
    copy_dir = tmp_path / "repro"
    shutil.copytree(
        PACKAGE_DIR, copy_dir, ignore=shutil.ignore_patterns("__pycache__")
    )
    for relpath, anchor, replacement in edits:
        target = copy_dir / relpath
        source = target.read_text(encoding="utf-8")
        assert source.count(anchor) == 1, (
            f"seed anchor moved in {relpath}; update test"
        )
        target.write_text(
            source.replace(anchor, replacement), encoding="utf-8"
        )
    index = ProjectIndex.build([copy_dir])
    analysis = EffectAnalysis(index) if with_analysis else None
    return [
        finding for _anchor, finding in ContractRules(index, analysis).check()
    ]


def _matching(findings, rule_id, needle):
    return [
        f
        for f in findings
        if f.rule_id == rule_id and needle in f.message
    ]


def test_contract_rule_metadata_names_the_six_rules():
    metadata = contract_rule_metadata()
    assert set(metadata) == CONTRACT_RULE_IDS
    for rule_id, rationale in metadata.items():
        assert rationale and rationale != rule_id


def test_dropped_canonical_field_fires_spec_field(tmp_path):
    findings = _seeded_findings(
        tmp_path,
        [("sim/parallel.py", '            "seed": self.seed,\n', "")],
    )
    hits = _matching(findings, "contract-spec-field", "'seed'")
    assert hits, [f.format() for f in findings]
    # Anchored on the drifted declaration, not some unrelated file.
    assert any("parallel.py" in f.path for f in hits)


def test_uncovered_runstats_counter_fires_sample_sum(tmp_path):
    findings = _seeded_findings(
        tmp_path,
        [(
            "sim/stats.py",
            "    dropped_allocation_pages: int = 0\n",
            "    dropped_allocation_pages: int = 0\n"
            "    retry_count: int = 0\n",
        )],
    )
    hits = _matching(findings, "contract-sample-sum", "retry_count")
    assert hits, [f.format() for f in findings]


def test_unfired_fault_kind_fires_fault_kind(tmp_path):
    # Neutralize the only fires("swap-write-error") site: the kind
    # stays declared in FAULT_KINDS but nothing can ever trigger it.
    findings = _seeded_findings(
        tmp_path,
        [(
            "guestos/swap.py",
            'self.faults.fires("swap-write-error") is not None',
            "False",
        )],
    )
    hits = _matching(findings, "contract-fault-kind", "swap-write-error")
    assert hits, [f.format() for f in findings]


def test_obs_global_write_fires_obs_pure(tmp_path):
    findings = _seeded_findings(
        tmp_path,
        [
            (
                "obs/bus.py",
                "class Telemetry:",
                "_EVENT_TOTAL = 0\n\n\nclass Telemetry:",
            ),
            (
                "obs/bus.py",
                "        self._pending_events.append(record)\n",
                "        self._pending_events.append(record)\n"
                "        global _EVENT_TOTAL\n"
                "        _EVENT_TOTAL = _EVENT_TOTAL + 1\n",
            ),
        ],
        with_analysis=True,
    )
    hits = _matching(findings, "contract-obs-pure", "_EVENT_TOTAL")
    assert hits, [f.format() for f in findings]


def test_unregistered_factory_fires_registry(tmp_path):
    findings = _seeded_findings(
        tmp_path,
        [("workloads/registry.py", '    "nginx": make_nginx,\n', "")],
    )
    hits = _matching(findings, "contract-registry", "make_nginx")
    assert hits, [f.format() for f in findings]


def test_new_demand_field_without_column_fires_fast_mirror(tmp_path):
    findings = _seeded_findings(
        tmp_path,
        [
            (
                "hw/timing.py",
                "    traffic_bytes: float = 0.0\n",
                "    traffic_bytes: float = 0.0\n"
                "    stall_ns: float = 0.0\n",
            )
        ],
    )
    hits = _matching(findings, "contract-fast-mirror", "'stall_ns'")
    assert hits, [f.format() for f in findings]
    # Anchored on the dataclass that grew the field.
    assert any("timing.py" in f.path for f in hits)


def test_stale_accumulator_column_fires_fast_mirror(tmp_path):
    findings = _seeded_findings(
        tmp_path,
        [
            (
                "sim/fast.py",
                'DEVICE_DEMAND_FIELDS = ("read_misses", "write_misses", '
                '"traffic_bytes")\n',
                'DEVICE_DEMAND_FIELDS = ("read_misses", "write_misses", '
                '"traffic_bytes", "stale_column")\n',
            )
        ],
    )
    hits = _matching(findings, "contract-fast-mirror", "'stale_column'")
    assert hits, [f.format() for f in findings]


def test_seeded_drift_only_fires_its_own_rule(tmp_path):
    # The registry seeding must not bleed into unrelated rules — each
    # contract rule watches its own declaration pair.
    findings = _seeded_findings(
        tmp_path,
        [("workloads/registry.py", '    "nginx": make_nginx,\n', "")],
    )
    assert {f.rule_id for f in findings} == {"contract-registry"}, [
        f.format() for f in findings
    ]
