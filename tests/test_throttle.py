"""Throttling emulation (Table 3)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.memdevice import DRAM, MemoryKind
from repro.hw.throttle import (
    DEFAULT_SLOWMEM,
    FIGURE1_SWEEP,
    TABLE3_PRESETS,
    ThrottleConfig,
    throttled_device,
)


def test_label_notation():
    assert ThrottleConfig(5, 9).label == "L:5,B:9"
    assert ThrottleConfig(2.5, 9).label == "L:2.5,B:9"


def test_factors_below_one_rejected():
    with pytest.raises(ConfigurationError):
        ThrottleConfig(0.5, 2)
    with pytest.raises(ConfigurationError):
        ThrottleConfig(2, 0.9)


@pytest.mark.parametrize("key,expected", sorted(TABLE3_PRESETS.items()))
def test_calibration_points_exact(key, expected):
    latency_factor, bandwidth_factor = key
    device = throttled_device(ThrottleConfig(latency_factor, bandwidth_factor))
    assert device.load_latency_ns == expected[0]
    assert device.bandwidth_gbps == expected[1]


def test_default_slowmem_is_l5_b9():
    assert DEFAULT_SLOWMEM.latency_factor == 5
    assert DEFAULT_SLOWMEM.bandwidth_factor == 9


def test_interpolated_latency_monotone_in_bandwidth_factor():
    # At fixed L:5, starving bandwidth queues requests: latency rises.
    latencies = [
        throttled_device(ThrottleConfig(5, b)).load_latency_ns
        for b in (5, 7, 9, 12)
    ]
    assert latencies == sorted(latencies)
    assert latencies[0] == 354.0 and latencies[-1] == 960.0


def test_bandwidth_divided_by_factor():
    device = throttled_device(ThrottleConfig(5, 9))
    assert device.bandwidth_gbps == pytest.approx(24.0 / 9)


def test_figure1_sweep_order():
    labels = [config.label for config in FIGURE1_SWEEP]
    assert labels == ["L:2,B:2", "L:5,B:5", "L:5,B:7", "L:5,B:9", "L:5,B:12"]


def test_throttled_device_kind_and_name():
    device = throttled_device(ThrottleConfig(5, 9), name="slowmem")
    assert device.kind is MemoryKind.GENERIC_SLOW
    assert device.name == "slowmem"
    default_name = throttled_device(ThrottleConfig(5, 9))
    assert "L:5,B:9" in default_name.name


def test_store_latency_scales_with_base_ratio():
    asymmetric = DRAM.with_capacity(DRAM.capacity_bytes)
    device = throttled_device(ThrottleConfig(2, 2), base=asymmetric)
    assert device.store_latency_ns == pytest.approx(device.load_latency_ns)


def test_capacity_override():
    device = throttled_device(ThrottleConfig(5, 9), capacity_bytes=123456789)
    assert device.capacity_bytes == 123456789


def test_extrapolation_beyond_measured_range():
    device = throttled_device(ThrottleConfig(5, 20))
    # Harsher than B:12 must be slower than the B:12 point.
    assert device.load_latency_ns > 960.0
    assert device.bandwidth_gbps < 1.38


def test_non_dram_base_uses_factor_scaling():
    from repro.hw.memdevice import NVM_PCM

    device = throttled_device(ThrottleConfig(2, 2), base=NVM_PCM)
    assert device.load_latency_ns > NVM_PCM.load_latency_ns
    assert device.bandwidth_gbps == pytest.approx(NVM_PCM.bandwidth_gbps / 2)
