"""Multi-dimensional per-CPU free lists."""

import pytest

from conftest import make_nodes
from repro.errors import AllocationError, OutOfMemoryError
from repro.guestos.percpu import PerCpuFreeLists
from repro.mem.extent import PageType


@pytest.fixture
def lists():
    nodes = make_nodes(fast_mib=16, slow_mib=16)
    return PerCpuFreeLists(cpus=2, nodes=nodes, batch_pages=8,
                           capacity_pages=32), nodes


def test_allocation_refills_then_hits(lists):
    percpu, nodes = lists
    first = percpu.allocate(0, 0, 4, PageType.HEAP)
    assert sum(r.count for r in first) == 4
    assert percpu.stats.refills == 1
    percpu.allocate(0, 0, 4, PageType.HEAP)
    assert percpu.stats.hits == 1  # served from the cached batch


def test_per_node_rows_are_independent(lists):
    percpu, nodes = lists
    percpu.allocate(0, 0, 4, PageType.HEAP)
    assert percpu.cached_pages(0) > 0
    assert percpu.cached_pages(1) == 0


def test_per_cpu_rows_are_independent(lists):
    percpu, nodes = lists
    percpu.allocate(0, 0, 4, PageType.HEAP)
    percpu.allocate(1, 0, 4, PageType.HEAP)
    assert percpu.stats.refills == 2  # each CPU refilled its own row


def test_free_spills_above_capacity(lists):
    percpu, nodes = lists
    node_free_before = nodes[0].free_pages
    ranges = percpu.allocate(0, 0, 30, PageType.HEAP)
    ranges += percpu.allocate(0, 0, 30, PageType.HEAP)
    percpu.free(0, 0, ranges)
    # The row overflowed its 32-page capacity: spills returned to buddy.
    assert percpu.stats.spills > 0
    percpu.flush()
    assert nodes[0].free_pages == node_free_before


def test_flush_returns_everything(lists):
    percpu, nodes = lists
    before = nodes[0].free_pages
    percpu.allocate(0, 0, 4, PageType.HEAP)  # refill grabbed a batch
    percpu.flush()
    # All cached pages returned (the 4 allocated are still out).
    assert percpu.cached_pages(0) == 0
    assert nodes[0].free_pages == before - 4


def test_refill_failure_when_node_empty(lists):
    percpu, nodes = lists
    node = nodes[0]
    node.allocate_pages(node.free_pages, PageType.HEAP)
    with pytest.raises(OutOfMemoryError):
        percpu.allocate(0, 0, 4, PageType.HEAP)


def test_unknown_node_rejected(lists):
    percpu, nodes = lists
    with pytest.raises(AllocationError):
        percpu.allocate(0, 99, 1, PageType.HEAP)


def test_parameter_validation():
    nodes = make_nodes(fast_mib=4, slow_mib=4)
    with pytest.raises(AllocationError):
        PerCpuFreeLists(cpus=0, nodes=nodes)
    with pytest.raises(AllocationError):
        PerCpuFreeLists(cpus=1, nodes=nodes, batch_pages=16, capacity_pages=8)


def test_split_hand_out_conserves_pages(lists):
    percpu, nodes = lists
    ranges = percpu.allocate(0, 0, 3, PageType.HEAP)  # forces a split
    assert sum(r.count for r in ranges) == 3
    ranges2 = percpu.allocate(0, 0, 5, PageType.HEAP)
    assert sum(r.count for r in ranges2) == 5
