"""Determinism-equivalence harness for repro.sim.parallel.

Correctness here *is* reproducibility: a grid point must produce a
bit-identical :class:`RunResult` whether it runs serially in-process,
in a forked worker, or comes back from the on-disk cache.  These tests
assert that equivalence field-by-field for every registered policy,
and pin the failure modes — cache corruption, worker crashes, per-spec
timeouts — as structured outcomes rather than hung or poisoned sweeps.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import signal
import time

import pytest

from repro.core.policy import available_policies
from repro.errors import SweepError
from repro.sim import parallel
from repro.sim.parallel import (
    ExperimentSpec,
    ResultCache,
    make_spec,
    results_or_raise,
    run_spec,
    run_specs,
    source_fingerprint,
)
from repro.sim.runner import run_experiment
from repro.workloads import registry
from repro.workloads.base import Workload

EPOCHS = 2
WORKLOADS = ("nginx", "redis")

_HAS_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()
_HAS_ALARM = hasattr(signal, "SIGALRM")

needs_fork = pytest.mark.skipif(
    not _HAS_FORK, reason="platform lacks fork start method"
)


def result_dict(result) -> dict:
    """Field-by-field view of a RunResult (recursing into RunStats,
    AllocStats, and every held dict) for exact equivalence checks."""
    return dataclasses.asdict(result)


def all_policy_specs() -> "list[ExperimentSpec]":
    return [
        make_spec(app, policy, epochs=EPOCHS)
        for app in WORKLOADS
        for policy in available_policies()
    ]


# ----------------------------------------------------------------------
# Serial vs parallel vs direct equivalence
# ----------------------------------------------------------------------


@needs_fork
def test_parallel_equals_serial_for_every_policy():
    """The headline guarantee: fan-out changes wall time, never results."""
    specs = all_policy_specs()
    serial = run_specs(specs, max_workers=1)
    fanned = run_specs(specs, max_workers=3)
    assert [o.ok for o in serial] == [True] * len(specs)
    assert [o.ok for o in fanned] == [True] * len(specs)
    assert {o.source for o in serial} == {"serial"}
    assert {o.source for o in fanned} == {"parallel"}
    for before, after in zip(serial, fanned):
        assert result_dict(before.result) == result_dict(after.result), (
            before.spec.label
        )


def test_spec_path_equals_run_experiment():
    """run_spec wraps run_experiment without perturbing anything."""
    for app in WORKLOADS:
        direct = run_experiment(app, "hetero-lru", epochs=EPOCHS)
        via_spec = run_spec(make_spec(app, "hetero-lru", epochs=EPOCHS))
        assert result_dict(direct) == result_dict(via_spec)


def test_sweep_rows_identical_serial_vs_parallel():
    """Driver-level equivalence over the sweep helper."""
    from repro.experiments.sweep import sweep

    kwargs = dict(
        apps=("nginx",), policies=("hetero-lru", "heap-od"),
        ratios=(0.25, 0.5), epochs=EPOCHS,
    )
    serial_rows = sweep(max_workers=1, **kwargs)
    if _HAS_FORK:
        parallel_rows = sweep(max_workers=2, **kwargs)
        assert serial_rows == parallel_rows


def test_duplicate_specs_share_one_result():
    spec = make_spec("nginx", "heap-od", epochs=EPOCHS)
    outcomes = run_specs([spec, spec, spec], max_workers=1)
    assert outcomes[0].result is outcomes[1].result is outcomes[2].result


# ----------------------------------------------------------------------
# Cache round trips
# ----------------------------------------------------------------------


def test_cache_miss_then_hit_bit_identical(tmp_path):
    cache = ResultCache(tmp_path)
    specs = [make_spec("nginx", "hetero-lru", epochs=EPOCHS)]
    cold = run_specs(specs, max_workers=1, cache=cache)
    assert cold[0].source == "serial"
    assert (cache.hits, cache.misses) == (0, 1)
    warm = run_specs(specs, max_workers=1, cache=cache)
    assert warm[0].source == "cache"
    assert cache.hits == 1
    assert result_dict(cold[0].result) == result_dict(warm[0].result)


def test_cache_corruption_degrades_to_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec("nginx", "slowmem-only", epochs=EPOCHS)
    fingerprint = source_fingerprint()
    run_specs([spec], max_workers=1, cache=cache)
    path = cache.path_for(spec.cache_key(fingerprint))
    assert path.exists()
    path.write_bytes(b"not a pickle")
    again = run_specs([spec], max_workers=1, cache=cache)
    assert again[0].ok and again[0].source == "serial"
    # The re-run repaired the entry.
    repaired = ResultCache(tmp_path)
    final = run_specs([spec], max_workers=1, cache=repaired)
    assert final[0].source == "cache"


def test_cache_rejects_version_skew_and_wrong_spec(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec("nginx", "heap-od", epochs=EPOCHS)
    fingerprint = source_fingerprint()
    result = run_spec(spec)
    cache.store(spec, fingerprint, result)
    key = spec.cache_key(fingerprint)
    path = cache.path_for(key)

    payload = pickle.loads(path.read_bytes())
    payload["version"] = ResultCache.FORMAT_VERSION + 1
    path.write_bytes(pickle.dumps(payload))
    assert cache.lookup(spec, fingerprint) is None
    assert not path.exists(), "skewed entry should be evicted"

    # A colliding key holding a different spec's payload is a miss.
    cache.store(spec, fingerprint, result)
    payload = pickle.loads(path.read_bytes())
    payload["spec"]["app"] = "redis"
    path.write_bytes(pickle.dumps(payload))
    assert cache.lookup(spec, fingerprint) is None


def test_source_fingerprint_invalidates_cache(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec("nginx", "hetero-lru", epochs=EPOCHS)
    result = run_spec(spec)
    cache.store(spec, "fingerprint-a", result)
    assert cache.lookup(spec, "fingerprint-a") is not None
    assert cache.lookup(spec, "fingerprint-b") is None, (
        "a source change must invalidate every cached result"
    )


def test_run_cached_memoizes_and_persists(tmp_path, monkeypatch):
    monkeypatch.setenv(parallel.CACHE_DIR_ENV, str(tmp_path))
    parallel.clear_memo()
    try:
        first = parallel.run_cached("nginx", "heap-od", epochs=EPOCHS)
        assert first is parallel.run_cached("nginx", "heap-od", epochs=EPOCHS)
        # Same grid point, new process (simulated by clearing the memo):
        # served from the REPRO_SWEEP_CACHE_DIR disk cache, bit-identical.
        parallel.clear_memo()
        reloaded = parallel.run_cached("nginx", "heap-od", epochs=EPOCHS)
        assert reloaded is not first
        assert result_dict(reloaded) == result_dict(first)
        assert list(tmp_path.glob("*.pickle")), "no cache file written"
    finally:
        parallel.clear_memo()


# ----------------------------------------------------------------------
# Fallbacks and structured failures
# ----------------------------------------------------------------------


class _SleepyWorkload(Workload):
    """Burns wall-clock time: the per-spec timeout target."""

    name = "parallel-test-sleepy"
    metric = "seconds"

    def default_epochs(self) -> int:
        return 1

    def epochs(self, count):
        time.sleep(20)
        return iter(())


class _CrashyWorkload(Workload):
    """Kills its worker process outright (simulated segfault)."""

    name = "parallel-test-crashy"
    metric = "seconds"

    def default_epochs(self) -> int:
        return 1

    def epochs(self, count):
        os._exit(3)


@pytest.fixture
def scratch_workloads():
    """Temporarily register the failure-injection workloads."""
    names = {
        _SleepyWorkload.name: _SleepyWorkload,
        _CrashyWorkload.name: _CrashyWorkload,
    }
    for name, factory in names.items():
        registry.register_workload(name, factory)
    yield names
    for name in names:
        registry._REGISTRY.pop(name, None)


def test_max_workers_one_never_forks(monkeypatch):
    """The serial fallback must not touch ProcessPoolExecutor at all."""

    def _boom(*args, **kwargs):  # pragma: no cover - defensive
        raise AssertionError("serial path created a process pool")

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _boom)
    outcomes = run_specs(
        [make_spec("nginx", "hetero-lru", epochs=EPOCHS)], max_workers=1
    )
    assert outcomes[0].ok and outcomes[0].source == "serial"


def test_forkless_platform_falls_back_to_serial(monkeypatch):
    monkeypatch.setattr(parallel, "_fork_available", lambda: False)
    outcomes = run_specs(
        [
            make_spec("nginx", "hetero-lru", epochs=EPOCHS),
            make_spec("nginx", "heap-od", epochs=EPOCHS),
        ],
        max_workers=4,
    )
    assert [o.source for o in outcomes] == ["serial", "serial"]
    assert all(o.ok for o in outcomes)


@pytest.mark.skipif(not _HAS_ALARM, reason="no SIGALRM on this platform")
def test_serial_timeout_is_structured(scratch_workloads):
    outcomes = run_specs(
        [make_spec(_SleepyWorkload.name, "hetero-lru", epochs=1)],
        max_workers=1,
        timeout_sec=0.3,
    )
    assert not outcomes[0].ok
    assert outcomes[0].error.kind == "timeout"
    assert "0.3" in outcomes[0].error.message


@needs_fork
@pytest.mark.skipif(not _HAS_ALARM, reason="no SIGALRM on this platform")
def test_parallel_timeout_spares_the_rest_of_the_grid(scratch_workloads):
    outcomes = run_specs(
        [
            make_spec(_SleepyWorkload.name, "hetero-lru", epochs=1),
            make_spec("nginx", "hetero-lru", epochs=EPOCHS),
        ],
        max_workers=2,
        timeout_sec=0.3,
        chunk_size=1,
    )
    assert outcomes[0].error is not None
    assert outcomes[0].error.kind == "timeout"
    assert outcomes[1].ok, "healthy grid points must survive a timeout"


@needs_fork
def test_worker_crash_is_structured_not_hung(scratch_workloads):
    outcomes = run_specs(
        [make_spec(_CrashyWorkload.name, "hetero-lru", epochs=1)],
        max_workers=2,
        chunk_size=1,
    )
    assert not outcomes[0].ok
    assert outcomes[0].error.kind == "worker-crash"
    assert "worker process died" in outcomes[0].error.message


def test_simulation_error_is_structured():
    # An unknown policy raises inside run_spec; the sweep records it
    # as a structured outcome and carries on.
    outcomes = run_specs(
        [make_spec("nginx", "no-such-policy", epochs=EPOCHS)],
        max_workers=1,
    )
    assert not outcomes[0].ok
    assert outcomes[0].error.kind == "error"
    assert "no-such-policy" in outcomes[0].error.message


def test_results_or_raise_reports_failures():
    outcomes = run_specs(
        [
            make_spec("nginx", "hetero-lru", epochs=EPOCHS),
            make_spec("nginx", "no-such-policy", epochs=EPOCHS),
        ],
        max_workers=1,
    )
    with pytest.raises(SweepError, match="1 of 2 grid points failed"):
        results_or_raise(outcomes)


def test_progress_callback_sees_every_grid_point():
    seen = []
    specs = [
        make_spec("nginx", "hetero-lru", epochs=EPOCHS),
        make_spec("nginx", "heap-od", epochs=EPOCHS),
    ]
    run_specs(
        specs,
        max_workers=1,
        progress=lambda outcome, done, total: seen.append((done, total)),
    )
    assert seen == [(1, 2), (2, 2)]


# ----------------------------------------------------------------------
# Pickle round trips (everything a worker ships home)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", sorted(available_policies()))
def test_runresult_pickle_roundtrip_every_policy(policy):
    """RunResult and everything it transitively holds must survive the
    worker boundary byte-for-byte."""
    result = run_experiment("nginx", policy, epochs=EPOCHS)
    clone = pickle.loads(pickle.dumps(result))
    assert result_dict(result) == result_dict(clone)
    assert clone.runtime_sec == result.runtime_sec
    assert clone.metric_value == result.metric_value


def test_sanitized_runresult_pickle_roundtrip():
    """sanitize=True attaches devtools report objects; they ride along."""
    from repro.sim.runner import build_config

    config = build_config(fast_ratio=0.25, slow_gib=0.5)
    config.sanitize = True
    result = run_experiment("nginx", "hetero-lru", epochs=3, config=config)
    clone = pickle.loads(pickle.dumps(result))
    assert len(clone.sanitizer_reports) == len(result.sanitizer_reports)


def test_spec_and_outcome_pickle_roundtrip():
    spec = make_spec(
        "graphchi", "vmm-exclusive", throttle=(1, 1),
        policy_args={"scan_interval_epochs": 2},
    )
    assert pickle.loads(pickle.dumps(spec)) == spec
    outcome = run_specs([make_spec("nginx", "heap-od", epochs=EPOCHS)])[0]
    clone = pickle.loads(pickle.dumps(outcome))
    assert clone.spec == outcome.spec
    assert result_dict(clone.result) == result_dict(outcome.result)
