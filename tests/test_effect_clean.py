"""Meta-tests: the shipped tree passes ``repro lint --effects`` clean,
and the committed ``heteroeffect-ledger.json`` matches a fresh
certification run — including the phases it claims are certified.

The last test is the CI contract in miniature: it copies the package,
impurifies a certified phase (an RNG draw plus an undeclared attribute
write inside ``_timing_phase``), re-certifies, and asserts the phase
is decertified with exactly those violations and that
:func:`diff_ledgers` reports the DECERTIFIED transition.  A refactor
that silently adds an effect to a certified phase fails the build the
same way.
"""

from __future__ import annotations

import json
import pathlib
import shutil

import repro
from repro.devtools.effect import (
    DEFAULT_LEDGER,
    EffectAnalysis,
    compute_ledger,
    diff_ledgers,
    ledger_json,
)
from repro.devtools.flow import ProjectIndex, deep_lint_paths

PACKAGE_DIR = pathlib.Path(repro.__file__).parent
REPO_ROOT = PACKAGE_DIR.parent.parent
LEDGER_PATH = REPO_ROOT / DEFAULT_LEDGER


def _fresh_ledger(package_dir=PACKAGE_DIR):
    index = ProjectIndex.build([package_dir])
    return compute_ledger(index, EffectAnalysis(index))


def test_shipped_tree_has_zero_effect_findings():
    report, index = deep_lint_paths(
        [PACKAGE_DIR],
        include_shallow=False,
        include_deep=False,
        include_effects=True,
    )
    assert index.files_indexed >= 80
    assert report.findings == [], "\n" + report.format_human()


def test_committed_ledger_matches_fresh_run():
    committed = json.loads(LEDGER_PATH.read_text(encoding="utf-8"))
    fresh = _fresh_ledger()
    problems = diff_ledgers(committed, fresh)
    assert problems == [], (
        "heteroeffect-ledger.json is stale — re-run `repro certify` "
        "and review the diff:\n" + "\n".join(problems)
    )
    # Byte-identical too: the file is the canonical serialization.
    assert LEDGER_PATH.read_text(encoding="utf-8") == ledger_json(fresh)


def test_timing_and_sample_phases_are_certified():
    committed = json.loads(LEDGER_PATH.read_text(encoding="utf-8"))
    phases = committed["phases"]
    assert phases["timing"]["certified"], phases["timing"]["violations"]
    assert phases["sample"]["certified"], phases["sample"]["violations"]
    # The fast-path prerequisites the certificates actually assert:
    assert "RunStats.stall_ns_by_device" in (
        phases["timing"]["observed_writes"]
    )
    assert any(
        ident.startswith("SimulationEngine._prev_")
        for ident in phases["sample"]["observed_writes"]
    )


def test_impurified_phase_is_decertified(tmp_path):
    committed = json.loads(LEDGER_PATH.read_text(encoding="utf-8"))
    assert committed["phases"]["timing"]["certified"]

    copy_dir = tmp_path / "repro"
    shutil.copytree(
        PACKAGE_DIR, copy_dir, ignore=shutil.ignore_patterns("__pycache__")
    )
    engine = copy_dir / "sim" / "engine.py"
    source = engine.read_text(encoding="utf-8")
    anchor = "        stall_total = 0.0\n"
    assert source.count(anchor) == 1, "impurify anchor moved; update test"
    engine.write_text(
        source.replace(
            anchor,
            "        stall_total = self.rng.random()\n"
            "        self._timing_scratch = stall_total\n",
        ),
        encoding="utf-8",
    )

    fresh = _fresh_ledger(copy_dir)
    timing = fresh["phases"]["timing"]
    assert not timing["certified"]
    kinds = {v.split(" ", 1)[0] for v in timing["violations"]}
    assert "rng-draw" in kinds
    assert "undeclared-write" in kinds

    problems = diff_ledgers(committed, fresh)
    assert any(
        "timing" in p and "DECERTIFIED" in p and "rng-draw" in p
        for p in problems
    )
