"""Machine memory pools and VMM domain state."""

import pytest

from repro.errors import ConfigurationError, OutOfMemoryError, SharingError
from repro.guestos.balloon import TierReservation
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.units import MIB, pages_of_bytes
from repro.vmm.domain import DEFAULT_WEIGHTS, Domain
from repro.vmm.machine import MachineMemory


def make_machine(fast_mib=64, slow_mib=256) -> MachineMemory:
    return MachineMemory(
        {
            NodeTier.FAST: DRAM.with_capacity(fast_mib * MIB),
            NodeTier.SLOW: NVM_PCM.with_capacity(slow_mib * MIB),
        }
    )


def make_domain(fast_min=100, slow_min=400) -> Domain:
    return Domain(
        domain_id=1,
        name="vm",
        reservations={
            NodeTier.FAST: TierReservation(fast_min, fast_min * 2),
            NodeTier.SLOW: TierReservation(slow_min, slow_min * 2),
        },
    )


# ----------------------------------------------------------------------
# MachineMemory
# ----------------------------------------------------------------------

def test_machine_pool_sizes():
    machine = make_machine()
    assert machine.total_pages(NodeTier.FAST) == pages_of_bytes(64 * MIB)
    assert machine.free_pages(NodeTier.SLOW) == pages_of_bytes(256 * MIB)


def test_machine_pools_are_disjoint_frame_spans():
    machine = make_machine()
    fast = machine.allocate(NodeTier.FAST, 10)
    slow = machine.allocate(NodeTier.SLOW, 10)
    fast_frames = {f for r in fast for f in range(r.start, r.end)}
    slow_frames = {f for r in slow for f in range(r.start, r.end)}
    assert not fast_frames & slow_frames


def test_machine_allocate_free_roundtrip():
    machine = make_machine()
    ranges = machine.allocate(NodeTier.FAST, 1000)
    machine.free(NodeTier.FAST, ranges)
    assert machine.free_pages(NodeTier.FAST) == machine.total_pages(NodeTier.FAST)


def test_machine_exact_or_raise():
    machine = make_machine(fast_mib=1)
    with pytest.raises(OutOfMemoryError):
        machine.allocate_exact_or_raise(NodeTier.FAST, 10_000_000)


def test_machine_unknown_tier_rejected():
    machine = make_machine()
    with pytest.raises(ConfigurationError):
        machine.allocate(NodeTier.MEDIUM, 1)
    with pytest.raises(ConfigurationError):
        MachineMemory({})


# ----------------------------------------------------------------------
# Domain
# ----------------------------------------------------------------------

def test_domain_grant_and_surrender():
    machine = make_machine()
    domain = make_domain()
    ranges = machine.allocate(NodeTier.FAST, 100)
    domain.record_grant(NodeTier.FAST, ranges)
    assert domain.pages(NodeTier.FAST) == 100
    surrendered = domain.surrender(NodeTier.FAST, 40)
    assert sum(r.count for r in surrendered) == 40
    assert domain.pages(NodeTier.FAST) == 60


def test_domain_surrender_more_than_granted_rejected():
    domain = make_domain()
    with pytest.raises(SharingError):
        domain.surrender(NodeTier.FAST, 1)


def test_domain_overcommit_pages():
    machine = make_machine()
    domain = make_domain(fast_min=100)
    domain.record_grant(NodeTier.FAST, machine.allocate(NodeTier.FAST, 100))
    assert domain.overcommit_pages(NodeTier.FAST) == 0
    domain.record_grant(NodeTier.FAST, machine.allocate(NodeTier.FAST, 30))
    assert domain.overcommit_pages(NodeTier.FAST) == 30


def test_domain_dominant_share_weighted():
    """FastMem weight 2 makes a FastMem-heavy VM FastMem-dominant."""
    machine = make_machine(fast_mib=64, slow_mib=64)
    capacities = {
        NodeTier.FAST: machine.total_pages(NodeTier.FAST),
        NodeTier.SLOW: machine.total_pages(NodeTier.SLOW),
    }
    domain = make_domain()
    quarter = capacities[NodeTier.FAST] // 4
    domain.record_grant(
        NodeTier.FAST, machine.allocate(NodeTier.FAST, quarter)
    )
    domain.record_grant(
        NodeTier.SLOW, machine.allocate(NodeTier.SLOW, quarter)
    )
    share, tier = domain.dominant_share(capacities)
    assert tier is NodeTier.FAST  # same pages, but weight 2 dominates
    assert share == pytest.approx(2.0 * quarter / capacities[NodeTier.FAST])


def test_default_weights_fastmem_double():
    assert DEFAULT_WEIGHTS[NodeTier.FAST] == 2.0
    assert DEFAULT_WEIGHTS[NodeTier.SLOW] == 1.0


def test_reservation_validation():
    with pytest.raises(ConfigurationError):
        TierReservation(10, 5)
    with pytest.raises(ConfigurationError):
        TierReservation(-1, 5)
    with pytest.raises(ConfigurationError):
        Domain(domain_id=1, name="empty", reservations={})


def test_domain_reservation_lookup():
    domain = make_domain()
    assert domain.reservation(NodeTier.FAST).min_pages == 100
    with pytest.raises(SharingError):
        domain.reservation(NodeTier.MEDIUM)
