"""Access-bit hotness tracking."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.extent import PageExtent, PageType
from repro.vmm.hotness import HotnessConfig, HotnessTracker


def hot_extent(pages=100, density=10.0) -> PageExtent:
    extent = PageExtent("r", PageType.HEAP, pages, 0)
    extent.record_access(0, density * pages)
    return extent


def scan_epochs(tracker, extents, epochs):
    """Simulate repeated access + scan cycles."""
    for epoch in range(epochs):
        for extent, density in extents:
            extent.record_access(epoch, density * extent.pages)
        tracker.scan([extent for extent, _ in extents], max_pages=10**9)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        HotnessConfig(scan_batch_pages=0)
    with pytest.raises(ConfigurationError):
        HotnessConfig(per_pte_scan_ns=-1)
    with pytest.raises(ConfigurationError):
        HotnessConfig(decay=0.0)


def test_scan_clears_access_bits():
    tracker = HotnessTracker()
    extent = hot_extent()
    assert extent.accessed
    tracker.scan([extent])
    assert not extent.accessed


def test_hot_classification_needs_density_and_history():
    config = HotnessConfig(hot_density=4.0, min_observations=3)
    tracker = HotnessTracker(config)
    hot = PageExtent("hot", PageType.HEAP, 100, 0)
    cold = PageExtent("cold", PageType.HEAP, 100, 0)
    report = None
    for epoch in range(5):
        hot.record_access(epoch, 100 * 10.0)  # density 10/page
        cold.record_access(epoch, 100 * 0.5)  # density 0.5/page
        report = tracker.scan([hot, cold], max_pages=10**9)
    assert hot in report.hot_extents
    assert cold not in report.hot_extents


def test_one_shot_pages_never_classified_hot():
    """Short-lived churn touched in a single scan is filtered by the
    observation-history requirement (keeps I/O churn from migrating)."""
    config = HotnessConfig(hot_density=1.0, min_observations=3)
    tracker = HotnessTracker(config)
    flash = hot_extent(density=100.0)
    report = tracker.scan([flash])
    assert flash not in report.hot_extents
    assert tracker.observations(flash) == 1


def test_scan_budget_strict_and_covering():
    config = HotnessConfig(scan_batch_pages=1024, min_coverage_extents=4)
    tracker = HotnessTracker(config)
    extents = [hot_extent(pages=10_000) for _ in range(8)]
    report = tracker.scan(extents)
    assert report.pages_scanned <= 1024
    # Coverage: at least min_coverage_extents got sampled.
    assert report.extents_scanned >= 4


def test_scan_cost_proportional_to_pages_examined():
    config = HotnessConfig(per_pte_scan_ns=1000.0, rmap_discount=1.0)
    tracker = HotnessTracker(config, has_rmap=False)
    extent = hot_extent(pages=100)
    report = tracker.scan([extent], max_pages=10**9)
    assert report.cost_ns >= 100 * 1000.0  # pages * per-PTE
    assert report.tlb_flushes >= 1


def test_rmap_discount_lowers_cost():
    config = HotnessConfig()
    with_rmap = HotnessTracker(config, has_rmap=True)
    without = HotnessTracker(config, has_rmap=False)
    a, b = hot_extent(), hot_extent()
    assert (
        with_rmap.scan([a], max_pages=10**9).cost_ns
        < without.scan([b], max_pages=10**9).cost_ns
    )


def test_estimate_decays_without_access():
    tracker = HotnessTracker()
    extent = hot_extent(density=10.0)
    tracker.scan([extent], max_pages=10**9)
    first = tracker.estimate(extent)
    # No access this epoch: bit stays clear, estimate decays.
    tracker.scan([extent], max_pages=10**9)
    assert tracker.estimate(extent) < first


def test_hot_extents_sorted_hottest_first():
    config = HotnessConfig(hot_density=0.5, min_observations=1)
    tracker = HotnessTracker(config)
    warm = PageExtent("warm", PageType.HEAP, 100, 0)
    blazing = PageExtent("blazing", PageType.HEAP, 100, 0)
    for epoch in range(3):
        warm.record_access(epoch, 100 * 2.0)
        blazing.record_access(epoch, 100 * 50.0)
        report = tracker.scan([warm, blazing], max_pages=10**9)
    assert report.hot_extents[0] is blazing


def test_forget_drops_state():
    tracker = HotnessTracker()
    extent = hot_extent()
    tracker.scan([extent], max_pages=10**9)
    tracker.forget([extent])
    assert tracker.estimate(extent) == 0.0
    assert tracker.observations(extent) == 0
