"""Shared test fixtures and builders."""

from __future__ import annotations

import pytest

from repro.guestos.kernel import GuestKernel
from repro.guestos.numa import MemoryNode, NodeTier, build_node
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.units import MIB, pages_of_bytes


def make_nodes(
    fast_mib: int = 64, slow_mib: int = 256
) -> dict[int, MemoryNode]:
    """A small two-tier node pair (FastMem DRAM + SlowMem NVM)."""
    nodes: dict[int, MemoryNode] = {}
    if fast_mib > 0:
        nodes[0] = build_node(
            0, NodeTier.FAST, DRAM.with_capacity(fast_mib * MIB), base_frame=0
        )
    nodes[1] = build_node(
        1,
        NodeTier.SLOW,
        NVM_PCM.with_capacity(slow_mib * MIB),
        base_frame=pages_of_bytes(fast_mib * MIB),
    )
    return nodes


def make_kernel(fast_mib: int = 64, slow_mib: int = 256, cpus: int = 4) -> GuestKernel:
    """A small standalone guest kernel (no hypervisor/balloon)."""
    return GuestKernel(make_nodes(fast_mib, slow_mib), cpus=cpus, balloon=None)


@pytest.fixture
def kernel() -> GuestKernel:
    return make_kernel()


@pytest.fixture
def nodes() -> dict[int, MemoryNode]:
    return make_nodes()
