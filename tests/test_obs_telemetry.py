"""Telemetry determinism, exactness, and round-trip contracts.

The two load-bearing properties of ``repro.obs``:

1. **Observation never perturbs simulation** — a run with a telemetry
   bus attached produces a field-by-field identical ``RunResult`` to a
   run without one (timeline stripped), for every registered policy.
2. **Timelines sum to finals** — additive per-epoch sample fields
   re-sum, in epoch order, to the final ``RunStats`` aggregates *bit
   for bit*, because the engine performs the identical sequence of
   float additions.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.policy import available_policies
from repro.errors import ObservabilityError
from repro.obs import (
    ChromeTraceSink,
    EpochSample,
    JsonlSink,
    PhaseProfiler,
    Telemetry,
    TimelineSink,
    diff_timelines,
    json_line,
    load_timeline,
)
from repro.sim.parallel import ResultCache, make_spec, run_spec, run_specs
from repro.sim.runner import run_experiment
from repro.vmm.migration import MigrationEngine, MigrationReport

APP = "redis"
EPOCHS = 2


def run_pair(policy: str, **kwargs):
    """(telemetry-off result, telemetry-on result, timeline)."""
    base = run_experiment(APP, policy, epochs=EPOCHS, **kwargs)
    telemetry = Telemetry()
    traced = run_experiment(
        APP, policy, epochs=EPOCHS, telemetry=telemetry, **kwargs
    )
    return base, traced, traced.timeline


def strip(result):
    return dataclasses.asdict(dataclasses.replace(result, timeline=None))


# ---------------------------------------------------------------------------
# Property 1: telemetry-on == telemetry-off, every policy.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", available_policies())
def test_telemetry_never_perturbs_results(policy):
    base, traced, timeline = run_pair(policy)
    assert strip(base) == strip(traced)
    assert base.timeline is None
    assert timeline is not None
    assert len(timeline) == base.stats.epochs


def test_disabled_bus_is_a_no_op():
    telemetry = Telemetry(enabled=False)
    base = run_experiment(APP, "hetero-lru", epochs=EPOCHS)
    traced = run_experiment(
        APP, "hetero-lru", epochs=EPOCHS, telemetry=telemetry
    )
    assert strip(base) == strip(traced)
    assert traced.timeline is None
    assert telemetry.timeline() == []


# ---------------------------------------------------------------------------
# Property 2: per-epoch samples sum exactly to the final RunStats.
# ---------------------------------------------------------------------------

_EXACT_SUM_FIELDS = (
    "runtime_ns",
    "cpu_ns",
    "io_wait_ns",
    "policy_overhead_ns",
    "kernel_cost_ns",
    "instructions",
    "llc_misses",
    "traffic_bytes",
    "total_accesses",
)


def resum(timeline, attr):
    total = 0.0
    for sample in timeline:
        total += getattr(sample, attr)
    return total


@pytest.mark.parametrize("policy", available_policies())
def test_timeline_sums_to_final_stats(policy):
    _, traced, timeline = run_pair(policy)
    stats = traced.stats
    for name in _EXACT_SUM_FIELDS:
        assert resum(timeline, name) == getattr(stats, name), name
    # Per-device stalls are exact too: same addition order per device.
    stalls: dict = {}
    for sample in timeline:
        for device, ns in sample.stall_ns_by_device.items():
            stalls[device] = stalls.get(device, 0.0) + ns
    assert stalls == {
        k: v for k, v in stats.stall_ns_by_device.items() if k in stalls
    }
    assert sum(stats.stall_ns_by_device.values()) == pytest.approx(
        sum(stalls.values())
    )
    # Monotonic counters: last cumulative reading matches the final.
    assert timeline[-1].llc_misses_cumulative == stats.llc_misses
    assert sum(s.pages_migrated for s in timeline) == traced.pages_migrated
    assert sum(s.pages_demoted for s in timeline) == traced.pages_demoted
    assert sum(s.swap_pages_out for s in timeline) == traced.swap_pages_out
    assert sum(s.swap_pages_in for s in timeline) == traced.swap_pages_in
    # Cumulative-delta costs re-sum approximately (subtraction deltas).
    assert resum(timeline, "scan_cost_ns") == pytest.approx(
        traced.scan_cost_ns
    )
    assert resum(timeline, "migration_cost_ns") == pytest.approx(
        traced.migration_cost_ns
    )


def test_samples_carry_epoch_order_and_occupancy():
    _, _, timeline = run_pair("hetero-lru")
    assert [s.epoch for s in timeline] == list(range(len(timeline)))
    for sample in timeline:
        assert sample.occupancy, "occupancy snapshot missing"
        assert "swap" in sample.occupancy
        assert sample.occupancy["nodes"], "no node gauges"
        for node in sample.occupancy["nodes"].values():
            assert node["total_pages"] == (
                node["free_pages"] + node["used_pages"]
            )
            assert set(node["zones"]), "zone breakdown missing"


# ---------------------------------------------------------------------------
# Sample serialization round trips.
# ---------------------------------------------------------------------------


def test_sample_dict_round_trip():
    _, _, timeline = run_pair("hetero-coordinated")
    for sample in timeline:
        clone = EpochSample.from_dict(sample.to_dict())
        assert clone == sample


def test_sample_json_round_trip_is_lossless():
    _, _, timeline = run_pair("hetero-lru")
    for sample in timeline:
        clone = EpochSample.from_dict(json.loads(json_line(sample.to_dict())))
        assert clone == sample


def test_sample_rejects_unknown_fields():
    with pytest.raises(ObservabilityError):
        EpochSample.from_dict({"epoch": 0, "warp_factor": 9})


def test_sample_from_dict_ignores_jsonl_type_tag():
    sample = EpochSample.from_dict({"type": "sample", "epoch": 3})
    assert sample.epoch == 3


# ---------------------------------------------------------------------------
# Sinks: JSONL file round trip and Chrome trace structure.
# ---------------------------------------------------------------------------


def test_jsonl_sink_round_trips_through_load_timeline(tmp_path):
    path = tmp_path / "run.jsonl"
    telemetry = Telemetry(sinks=[TimelineSink(), JsonlSink(path)])
    traced = run_experiment(
        APP, "hetero-lru", epochs=EPOCHS, telemetry=telemetry
    )
    header, samples, summary = load_timeline(path)
    assert header["workload"] == APP
    assert header["policy"] == "hetero-lru"
    assert samples == traced.timeline
    assert summary["epochs"] == traced.stats.epochs
    assert summary["runtime_ns"] == traced.stats.runtime_ns


def test_load_timeline_rejects_garbage_mid_file(tmp_path):
    # Corruption anywhere but the last line is a damaged file, not a
    # torn write — it must still raise.
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type":"header"}\nnot json\n{"type":"summary"}\n')
    with pytest.raises(ObservabilityError):
        load_timeline(path)


def test_load_timeline_drops_truncated_trailing_line(tmp_path):
    # A crash mid-append leaves half a JSON object as the final line;
    # the rest of the timeline must stay loadable (warn + drop).
    sample = EpochSample(epoch=0, runtime_ns=10.0)
    path = tmp_path / "truncated.jsonl"
    path.write_text(
        json_line({"type": "header", "workload": "redis"})
        + "\n"
        + json_line(dict(sample.to_dict(), type="sample"))
        + "\n"
        + '{"type":"sample","epo'  # torn write: no closing brace/newline
    )
    with pytest.warns(RuntimeWarning, match="truncated trailing line"):
        header, samples, summary = load_timeline(path)
    assert header == {"workload": "redis"}
    assert len(samples) == 1
    assert samples[0].epoch == 0
    assert summary == {}


def test_chrome_trace_sink_emits_valid_trace(tmp_path):
    path = tmp_path / "run.trace.json"
    telemetry = Telemetry(
        sinks=[ChromeTraceSink(path)], profiler=PhaseProfiler()
    )
    run_experiment(APP, "hetero-coordinated", epochs=3, telemetry=telemetry)
    trace = json.loads(path.read_text())
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events, "trace is empty"
    phases = {e["ph"] for e in events}
    assert {"X", "C", "M"} <= phases
    slices = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    assert len(slices) == 3
    # Epoch slices tile virtual time: each begins where the last ended.
    for prev, cur in zip(slices, slices[1:]):
        assert cur["ts"] == pytest.approx(prev["ts"] + prev["dur"])
    # Host-profiler slices land on the separate profiler pid.
    assert any(e["ph"] == "X" and e["pid"] == 1 for e in events)


# ---------------------------------------------------------------------------
# Timeline diffing.
# ---------------------------------------------------------------------------


def _write_timeline(tmp_path, name, policy, seed):
    path = tmp_path / name
    telemetry = Telemetry(sinks=[JsonlSink(path)])
    run_experiment(APP, policy, epochs=3, seed=seed, telemetry=telemetry)
    return path


def test_diff_identical_runs(tmp_path):
    a = _write_timeline(tmp_path, "a.jsonl", "hetero-lru", seed=7)
    b = _write_timeline(tmp_path, "b.jsonl", "hetero-lru", seed=7)
    diff = diff_timelines(load_timeline(a)[1], load_timeline(b)[1])
    assert diff.identical
    assert "identical" in diff.describe()


def test_diff_reports_first_divergent_epoch(tmp_path):
    a = _write_timeline(tmp_path, "a.jsonl", "random", seed=7)
    b = _write_timeline(tmp_path, "b.jsonl", "random", seed=8)
    diff = diff_timelines(load_timeline(a)[1], load_timeline(b)[1])
    assert not diff.identical
    assert diff.first_divergent_epoch == 0
    assert diff.differing_fields
    assert "first divergent epoch: 0" in diff.describe()


def test_diff_length_mismatch():
    samples = [EpochSample(epoch=i) for i in range(3)]
    diff = diff_timelines(samples, samples[:2])
    assert not diff.identical
    assert diff.len_a == 3 and diff.len_b == 2
    assert "length" in diff.describe()


# ---------------------------------------------------------------------------
# Events: policy decisions and migration-pass brackets.
# ---------------------------------------------------------------------------


def test_demote_pass_events_fire_under_pressure():
    telemetry = Telemetry()
    traced = run_experiment(
        APP, "hetero-lru", epochs=10, fast_ratio=0.05, telemetry=telemetry
    )
    assert traced.pages_demoted > 0
    events = [e for s in traced.timeline for e in s.events]
    demotes = [e for e in events if e["name"] == "demote-pass"]
    assert demotes, "no demote-pass events despite demotions"
    for event in demotes:
        assert event["source"] == "core.policy"
        assert event["policy"] == "hetero-lru"
        assert event["pages"] > 0
    assert sum(e["pages"] for e in demotes) == traced.pages_demoted


def test_migration_observer_brackets_passes():
    seen = []
    engine = MigrationEngine(observer=lambda kind, r: seen.append((kind, r)))
    report = engine.begin_pass()
    engine.commit_pass()
    assert [kind for kind, _ in seen] == ["begin", "commit"]
    assert seen[1][1] is report
    engine.begin_pass()
    aborted = engine.abort_pass()
    assert [kind for kind, _ in seen] == ["begin", "commit", "begin", "abort"]
    assert engine.total.pages_moved == 0
    assert aborted.pages_moved == 0


def test_migration_event_duck_types_report():
    telemetry = Telemetry()
    report = MigrationReport(pages_moved=12, extents_moved=3, cost_ns=42.0)
    telemetry.migration_event("commit", report)
    (event,) = telemetry.drain_events()
    assert event["name"] == "migration-commit"
    assert event["source"] == "vmm.migration"
    assert event["pages_moved"] == 12
    assert event["extents_moved"] == 3
    assert event["cost_ns"] == 42.0
    assert telemetry.drain_events() == []


# ---------------------------------------------------------------------------
# Host profiler.
# ---------------------------------------------------------------------------


def test_profiler_phases_and_report():
    profiler = PhaseProfiler()
    with profiler.phase("demand"):
        pass
    with profiler.phase("demand"):
        pass
    with profiler.phase("policy"):
        pass
    report = profiler.report()
    assert report["demand"]["calls"] == 2
    assert report["policy"]["calls"] == 1
    assert profiler.total_seconds >= 0.0
    profiler.reset()
    assert profiler.report() == {}


def test_profiler_lands_in_jsonl_summary(tmp_path):
    path = tmp_path / "run.jsonl"
    telemetry = Telemetry(
        sinks=[JsonlSink(path)], profiler=PhaseProfiler()
    )
    run_experiment(APP, "hetero-lru", epochs=EPOCHS, telemetry=telemetry)
    _, _, summary = load_timeline(path)
    assert "profile" in summary
    assert summary["profile"]["demand"]["calls"] == EPOCHS


# ---------------------------------------------------------------------------
# Cache sidecars and the parallel runner.
# ---------------------------------------------------------------------------


def test_cache_sidecar_round_trip(tmp_path):
    spec = make_spec(APP, "hetero-lru", epochs=EPOCHS)
    cache = ResultCache(tmp_path)
    first = run_specs([spec], cache=cache, capture_timelines=True)
    assert first[0].source in ("serial", "parallel")
    assert first[0].result.timeline is not None
    second = run_specs([spec], cache=cache, capture_timelines=True)
    assert second[0].source == "cache"
    assert second[0].result.timeline == first[0].result.timeline
    assert strip(second[0].result) == strip(first[0].result)


def test_cache_sidecar_corruption_is_a_miss(tmp_path):
    spec = make_spec(APP, "hetero-lru", epochs=EPOCHS)
    cache = ResultCache(tmp_path)
    run_specs([spec], cache=cache, capture_timelines=True)
    sidecars = list(tmp_path.glob("*.timeline.jsonl"))
    assert len(sidecars) == 1
    sidecars[0].write_text("garbage\n")
    again = run_specs([spec], cache=cache, capture_timelines=True)
    assert again[0].source != "cache"
    assert again[0].result.timeline is not None
    # The re-run refreshed the sidecar.
    fresh = run_specs([spec], cache=cache, capture_timelines=True)
    assert fresh[0].source == "cache"
    assert fresh[0].result.timeline == again[0].result.timeline


def test_capture_off_leaves_timeline_none(tmp_path):
    spec = make_spec(APP, "hetero-lru", epochs=EPOCHS)
    outcomes = run_specs([spec], cache=ResultCache(tmp_path))
    assert outcomes[0].result.timeline is None
    assert not list(tmp_path.glob("*.timeline.jsonl"))


def test_run_spec_telemetry_matches_run_experiment():
    spec = make_spec(APP, "hetero-coordinated", epochs=EPOCHS)
    telemetry = Telemetry()
    traced = run_spec(spec, telemetry=telemetry)
    plain = run_spec(spec)
    assert strip(traced) == strip(plain)
    assert traced.timeline is not None


def test_parallel_workers_carry_timelines(tmp_path):
    specs = [
        make_spec(APP, "hetero-lru", epochs=EPOCHS, seed=seed)
        for seed in (7, 8)
    ]
    outcomes = run_specs(specs, max_workers=2, capture_timelines=True)
    for outcome in outcomes:
        assert outcome.ok
        assert outcome.result.timeline is not None
        assert len(outcome.result.timeline) == EPOCHS
