"""Roofline memory timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.memdevice import DRAM
from repro.hw.throttle import ThrottleConfig, throttled_device
from repro.hw.timing import CpuConfig, DeviceDemand, MemoryTimingModel


def test_cpu_time():
    cpu = CpuConfig(frequency_ghz=2.0, ipc=2.0)
    # 4 instructions per ns.
    assert cpu.cpu_ns(4e9) == pytest.approx(1e9)


def test_cpu_validation():
    with pytest.raises(ConfigurationError):
        CpuConfig(frequency_ghz=0)
    with pytest.raises(ConfigurationError):
        CpuConfig(ipc=-1)


def test_latency_bound_regime():
    model = MemoryTimingModel()
    demand = DeviceDemand(read_misses=1000, traffic_bytes=64_000)
    # Few bytes, low MLP: latency term dominates.
    stall = model.stall_ns(DRAM, demand, mlp=1.0)
    assert stall == pytest.approx(1000 * DRAM.load_latency_ns)


def test_bandwidth_bound_regime():
    model = MemoryTimingModel()
    demand = DeviceDemand(read_misses=1000, traffic_bytes=10_000_000)
    # Huge traffic, deep MLP: bandwidth floor dominates.
    stall = model.stall_ns(DRAM, demand, mlp=64.0)
    assert stall == pytest.approx(10_000_000 / DRAM.bytes_per_ns)


def test_mlp_divides_latency_term():
    model = MemoryTimingModel()
    demand = DeviceDemand(read_misses=1000, traffic_bytes=0)
    assert model.stall_ns(DRAM, demand, mlp=4.0) == pytest.approx(
        model.stall_ns(DRAM, demand, mlp=1.0) / 4
    )


def test_writes_use_store_latency():
    from repro.hw.memdevice import NVM_PCM

    model = MemoryTimingModel()
    reads = DeviceDemand(read_misses=100, traffic_bytes=0)
    writes = DeviceDemand(write_misses=100, traffic_bytes=0)
    assert model.stall_ns(NVM_PCM, writes, 1.0) > model.stall_ns(
        NVM_PCM, reads, 1.0
    )


def test_slower_device_stalls_longer():
    model = MemoryTimingModel()
    slow = throttled_device(ThrottleConfig(5, 9))
    demand = DeviceDemand(read_misses=10_000, traffic_bytes=640_000)
    assert model.stall_ns(slow, demand, 4.0) > model.stall_ns(
        DRAM, demand, 4.0
    )


def test_invalid_mlp_rejected():
    model = MemoryTimingModel()
    with pytest.raises(ConfigurationError):
        model.stall_ns(DRAM, DeviceDemand(), mlp=0.0)


def test_epoch_time_sums_cpu_and_stalls():
    model = MemoryTimingModel(CpuConfig(frequency_ghz=1.0, ipc=1.0))
    demand = DeviceDemand(read_misses=100, traffic_bytes=0)
    total = model.epoch_ns(1000.0, {DRAM: demand}, mlp=1.0)
    assert total == pytest.approx(1000.0 + 100 * DRAM.load_latency_ns)


def test_demand_merge():
    a = DeviceDemand(read_misses=1, write_misses=2, traffic_bytes=3)
    b = DeviceDemand(read_misses=10, write_misses=20, traffic_bytes=30)
    merged = a.merged(b)
    assert merged.read_misses == 11
    assert merged.write_misses == 22
    assert merged.traffic_bytes == 33
