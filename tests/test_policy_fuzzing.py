"""Policy fuzzing over synthetic workloads.

The strongest end-to-end properties the system promises, checked over
randomized application signatures:

* no HeteroOS policy ever loses meaningfully to SlowMem-only;
* the mechanism ladder stays (approximately) monotone;
* kernel accounting survives every combination.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_policy
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config
from repro.workloads.synthetic import make_synthetic

EPOCHS = 12


def run(workload_seed, io_intensity, skew, policy_name, periodic_cold=True):
    workload = make_synthetic(
        seed=workload_seed,
        footprint_gib=1.5,
        io_intensity=io_intensity,
        locality_skew=skew,
        run_epochs=EPOCHS,
        periodic_cold=periodic_cold,
    )
    policy = make_policy(policy_name)
    engine = SimulationEngine(
        build_config(
            fast_ratio=0.2, slow_gib=4.0,
            unlimited_fast=policy.requires_unlimited_fast,
        ),
        workload,
        policy,
    )
    result = engine.run(EPOCHS)
    engine.kernel.check_invariants()
    return result


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    io_intensity=st.floats(min_value=0.0, max_value=0.8),
    skew=st.floats(min_value=0.0, max_value=1.0),
)
def test_heteroos_never_loses_to_slowmem_only(seed, io_intensity, skew):
    baseline = run(seed, io_intensity, skew, "slowmem-only")
    placed = run(seed, io_intensity, skew, "hetero-lru")
    assert placed.stats.runtime_ns <= baseline.stats.runtime_ns * 1.03


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    io_intensity=st.floats(min_value=0.1, max_value=0.8),
)
def test_ladder_roughly_monotone_on_random_apps(seed, io_intensity):
    # Steady access mixes only: periodic-reaccess patterns are the known
    # adversary of recency-based reclaim (cold data looks evictable right
    # before it reheats) and legitimately invert the LRU rung — they get
    # their own guarantee below.
    heap_od = run(seed, io_intensity, 0.7, "heap-od", periodic_cold=False)
    io_od = run(
        seed, io_intensity, 0.7, "heap-io-slab-od", periodic_cold=False
    )
    lru = run(seed, io_intensity, 0.7, "hetero-lru", periodic_cold=False)
    assert io_od.stats.runtime_ns <= heap_od.stats.runtime_ns * 1.05
    # Reclaim trades copy cost now for placement later; on individual
    # adversarial signatures that trade can lose to pure placement
    # (it wins on average — asserted separately below), but it must
    # always keep the placement-level guarantee vs the naive floor.
    assert lru.stats.runtime_ns <= heap_od.stats.runtime_ns * 1.35


def test_lru_wins_on_average_over_random_apps():
    """Across a fixed panel of random signatures, HeteroOS-LRU beats
    pure placement in aggregate."""
    seeds = range(10)
    io_total = sum(
        run(seed, 0.3, 0.7, "heap-io-slab-od").stats.runtime_ns
        for seed in seeds
    )
    lru_total = sum(
        run(seed, 0.3, 0.7, "hetero-lru").stats.runtime_ns
        for seed in seeds
    )
    assert lru_total < io_total


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_fastmem_only_is_the_floor_runtime(seed):
    ceiling = run(seed, 0.3, 0.7, "fastmem-only")
    for policy in ("random", "hetero-lru"):
        other = run(seed, 0.3, 0.7, policy)
        assert other.stats.runtime_ns >= ceiling.stats.runtime_ns * 0.97
