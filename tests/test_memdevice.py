"""Memory device models and Table 1 presets."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.memdevice import (
    DRAM,
    MemoryDevice,
    MemoryKind,
    NVM_PCM,
    STACKED_3D,
    TABLE1_DEVICES,
)
from repro.units import GIB


def test_table1_has_three_technologies():
    assert len(TABLE1_DEVICES) == 3
    kinds = {device.kind for device in TABLE1_DEVICES}
    assert kinds == {
        MemoryKind.STACKED_3D, MemoryKind.DRAM, MemoryKind.NVM_PCM,
    }


def test_dram_matches_table3_baseline():
    assert DRAM.load_latency_ns == 60.0
    assert DRAM.bandwidth_gbps == 24.0


def test_nvm_asymmetric_latency():
    # PCM stores are several times slower than loads (Table 1).
    assert NVM_PCM.store_latency_ns >= 2 * NVM_PCM.load_latency_ns


def test_nvm_has_finite_endurance_dram_does_not():
    assert NVM_PCM.endurance_cycles is not None
    assert DRAM.endurance_cycles is None
    assert STACKED_3D.endurance_cycles is None


def test_bytes_per_ns_equals_gbps():
    assert DRAM.bytes_per_ns == DRAM.bandwidth_gbps


def test_with_capacity_preserves_everything_else():
    resized = NVM_PCM.with_capacity(3 * GIB)
    assert resized.capacity_bytes == 3 * GIB
    assert resized.load_latency_ns == NVM_PCM.load_latency_ns
    assert resized.name == NVM_PCM.name
    assert NVM_PCM.capacity_bytes != 3 * GIB  # original untouched


def test_with_name():
    named = DRAM.with_name("fastmem")
    assert named.name == "fastmem"
    assert named.load_latency_ns == DRAM.load_latency_ns


def test_is_faster_than_by_latency_then_bandwidth():
    assert STACKED_3D.is_faster_than(DRAM)
    assert DRAM.is_faster_than(NVM_PCM)
    same_latency = DRAM.with_name("dram2")
    assert not DRAM.is_faster_than(same_latency)


@pytest.mark.parametrize(
    "field,value",
    [
        ("load_latency_ns", 0.0),
        ("store_latency_ns", -1.0),
        ("bandwidth_gbps", 0.0),
        ("capacity_bytes", -1),
    ],
)
def test_invalid_device_parameters_rejected(field, value):
    kwargs = dict(
        name="bad",
        kind=MemoryKind.DRAM,
        load_latency_ns=60.0,
        store_latency_ns=60.0,
        bandwidth_gbps=24.0,
        capacity_bytes=GIB,
    )
    kwargs[field] = value
    with pytest.raises(ConfigurationError):
        MemoryDevice(**kwargs)


def test_devices_are_hashable_and_frozen():
    # The engine keys per-device demand dicts by device.
    assert len({DRAM, STACKED_3D, NVM_PCM}) == 3
    with pytest.raises(Exception):
        DRAM.load_latency_ns = 10  # type: ignore[misc]
