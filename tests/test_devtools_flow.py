"""heteroflow: one failing + one passing fixture per analysis, plus
interprocedural credit, baseline, suppression, SARIF, cache, and CLI
coverage.

Every fixture is a tiny project tree written under ``tmp_path`` with a
``repro``-named root so module names resolve the same way they do for
the real package (``core/x.py`` -> module ``core.x`` in the ``core``
decision package).
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main
from repro.devtools.flow import (
    Baseline,
    BaselineEntry,
    CORE_PROTOCOLS,
    combined_rule_metadata,
    deep_lint_paths,
    deep_rule_metadata,
    report_to_sarif,
)
from repro.devtools.lint import Finding
from repro.errors import LintError


def make_tree(tmp_path, files):
    """Write ``files`` (relpath -> source) under a repro-named root."""
    root = tmp_path / "proj" / "repro"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    for directory in {p.parent for p in root.rglob("*.py")} | {root}:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def deep(tmp_path, files, rule_id=None, **kwargs):
    kwargs.setdefault("include_shallow", False)
    report, _index = deep_lint_paths([make_tree(tmp_path, files)], **kwargs)
    if rule_id is None:
        return report.findings
    return [f for f in report.findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# Dimension inference
# ----------------------------------------------------------------------

MIX_BAD = """\
    from repro.units import Bytes, Ns

    def total(latency_ns: Ns, traffic: Bytes) -> float:
        return latency_ns + traffic
"""

MIX_GOOD = """\
    from repro.units import Ns

    def total(cpu_ns: Ns, stall_ns: Ns) -> float:
        return cpu_ns + stall_ns
"""


def test_dim_mix_fires_on_ns_plus_bytes(tmp_path):
    hits = deep(tmp_path, {"core/t.py": MIX_BAD}, rule_id="flow-dim-mix")
    assert len(hits) == 1
    assert "ns" in hits[0].message and "bytes" in hits[0].message


def test_dim_mix_allows_like_dimensions(tmp_path):
    assert not deep(tmp_path, {"core/t.py": MIX_GOOD}, rule_id="flow-dim-mix")


def test_dim_mix_fires_on_comparison(tmp_path):
    src = """\
        from repro.units import Ns, Pages

        def over(budget_ns: Ns, used_pages: Pages) -> bool:
            return used_pages > budget_ns
    """
    assert deep(tmp_path, {"core/t.py": src}, rule_id="flow-dim-mix")


def test_dim_arg_fires_on_pages_into_ns_parameter(tmp_path):
    src = """\
        from repro.units import Ns, Pages

        def charge(cost_ns: Ns) -> None:
            pass

        def bad(pages: Pages) -> None:
            charge(pages)
    """
    hits = deep(tmp_path, {"core/t.py": src}, rule_id="flow-dim-arg")
    assert len(hits) == 1
    assert "charge" in hits[0].message


def test_dim_arg_clean_with_units_conversion(tmp_path):
    # pages * PAGE_SIZE converts to bytes, so passing it to a Bytes
    # parameter is exactly right.
    src = """\
        from repro.units import PAGE_SIZE, Bytes, Pages

        def account(num_bytes: Bytes) -> None:
            pass

        def good(pages: Pages) -> None:
            account(pages * PAGE_SIZE)
    """
    assert not deep(tmp_path, {"core/t.py": src}, rule_id="flow-dim-arg")


def test_dim_return_fires_and_propagates_through_calls(tmp_path):
    src = """\
        from repro.units import Ns, Pages

        def wrong(pages: Pages) -> Ns:
            return pages
    """
    assert deep(tmp_path, {"core/t.py": src}, rule_id="flow-dim-return")


def test_dim_assign_fires_on_name_convention_seed(tmp_path):
    # No alias imports at all: the _ns / _pages naming convention is
    # enough to seed both sides.
    src = """\
        def f(scan_pages):
            cost_ns = scan_pages
            return cost_ns
    """
    assert deep(tmp_path, {"core/t.py": src}, rule_id="flow-dim-assign")


def test_dim_literals_are_compatible_with_everything(tmp_path):
    src = """\
        from repro.units import Ns

        def f(cost_ns: Ns) -> float:
            return cost_ns + 5.0
    """
    assert not deep(tmp_path, {"core/t.py": src})


def test_dim_inferred_return_crosses_functions(tmp_path):
    # helper() has no annotation; its pages return dim is inferred and
    # the mismatch is caught at the call in the *caller*.
    src = """\
        from repro.units import Ns, Pages

        def helper(pages: Pages):
            return pages

        def charge(cost_ns: Ns) -> None:
            pass

        def bad() -> None:
            charge(helper(4))
    """
    assert deep(tmp_path, {"core/t.py": src}, rule_id="flow-dim-arg")


# ----------------------------------------------------------------------
# Protocol typestate
# ----------------------------------------------------------------------

SCAN_BAD = """\
    class Scanner:
        def scan(self, extents, tlb):
            for extent in extents:
                extent.clear_hardware_bits()
"""

SCAN_GOOD = """\
    class Scanner:
        def scan(self, extents, tlb):
            for extent in extents:
                extent.clear_hardware_bits()
            tlb.flush()
"""

SCAN_HELPER = """\
    class Scanner:
        def scan(self, extents, tlb):
            for extent in extents:
                extent.clear_hardware_bits()
            self._finish(tlb)

        def _finish(self, tlb):
            tlb.flush()
"""


def test_protocol_scan_fires_without_flush(tmp_path):
    hits = deep(tmp_path, {"vmm/s.py": SCAN_BAD}, rule_id="flow-protocol-scan")
    assert len(hits) == 1
    assert hits[0].function.endswith("Scanner.scan")


def test_protocol_scan_clean_with_flush(tmp_path):
    assert not deep(
        tmp_path, {"vmm/s.py": SCAN_GOOD}, rule_id="flow-protocol-scan"
    )


def test_protocol_scan_credits_helper_that_completes(tmp_path):
    # Interprocedural: _finish() flushes, so scan() is credited.
    assert not deep(
        tmp_path, {"vmm/s.py": SCAN_HELPER}, rule_id="flow-protocol-scan"
    )


def test_protocol_migration_pairing(tmp_path):
    src = """\
        class Engine:
            def bad(self):
                self.begin_pass()

            def committed(self):
                self.begin_pass()
                self.commit_pass()

            def aborted(self):
                self.begin_pass()
                self.abort_pass()
    """
    hits = deep(
        tmp_path, {"vmm/m.py": src}, rule_id="flow-protocol-migration"
    )
    assert len(hits) == 1
    assert hits[0].function.endswith("Engine.bad")


def test_protocol_migration_credits_closing_caller(tmp_path):
    # The helper opens the pass; every caller closes it, so neither is
    # reported.  A second helper nobody completes still fires.
    src = """\
        class Engine:
            def start(self):
                self.begin_pass()

            def run(self):
                self.start()
                self.commit_pass()

        class Leaky:
            def start(self):
                self.begin_pass()

            def run(self):
                self.start()
    """
    hits = deep(
        tmp_path, {"vmm/m.py": src}, rule_id="flow-protocol-migration"
    )
    assert len(hits) == 1
    assert "Leaky" in hits[0].function


def test_protocol_balloon_hidden_span_must_be_resolved(tmp_path):
    src = """\
        class Backend:
            def bad(self, kernel, domain):
                kernel.hide_pages(0, 64)

            def good(self, kernel, domain):
                kernel.hide_pages(0, 64)
                domain.surrender(None, 64)
    """
    hits = deep(
        tmp_path, {"vmm/b.py": src}, rule_id="flow-protocol-balloon"
    )
    assert len(hits) == 1
    assert hits[0].function.endswith("Backend.bad")


def test_protocol_region_use_after_free(tmp_path):
    src = """\
        def bad(kernel):
            kernel.free_region("r")
            kernel.touch_region("r", 1.0)

        def realloc_is_fine(kernel):
            kernel.free_region("r")
            kernel.allocate_region("r", None, 4, [0])
            kernel.touch_region("r", 1.0)
    """
    hits = deep(
        tmp_path, {"core/k.py": src}, rule_id="flow-protocol-region"
    )
    assert len(hits) == 1
    assert hits[0].function.endswith("bad")


def test_protocol_frames_touch_before_allocate(tmp_path):
    src = """\
        def bad(kernel):
            kernel.touch_region("r", 1.0)
            kernel.allocate_region("r", None, 4, [0])

        def good(kernel):
            kernel.allocate_region("r", None, 4, [0])
            kernel.touch_region("r", 1.0)
    """
    hits = deep(
        tmp_path, {"core/k.py": src}, rule_id="flow-protocol-frames"
    )
    assert len(hits) == 1
    assert hits[0].function.endswith("bad")


def test_protocol_keys_distinguish_regions(tmp_path):
    # Freeing one region and touching a *different* one is not a
    # use-after-free.
    src = """\
        def fine(kernel):
            kernel.free_region("a")
            kernel.touch_region("b", 1.0)
    """
    assert not deep(
        tmp_path, {"core/k.py": src}, rule_id="flow-protocol-region"
    )


# ----------------------------------------------------------------------
# Determinism taint
# ----------------------------------------------------------------------


def test_taint_direct_set_into_max(tmp_path):
    src = """\
        def pick(extents):
            candidates = {e for e in extents}
            return max(candidates)
    """
    assert deep(
        tmp_path, {"core/p.py": src}, rule_id="flow-unordered-flow"
    )


def test_taint_flows_through_helper_return(tmp_path):
    src = """\
        def collect():
            return {1, 2, 3}

        def pick():
            items = collect()
            return max(items)
    """
    hits = deep(
        tmp_path, {"vmm/p.py": src}, rule_id="flow-unordered-flow"
    )
    assert len(hits) == 1
    assert hits[0].function.endswith("pick")


def test_taint_laundered_by_sorted(tmp_path):
    src = """\
        def pick(extents):
            candidates = {e for e in extents}
            ranked = sorted(candidates)
            return max(ranked)
    """
    assert not deep(
        tmp_path, {"core/p.py": src}, rule_id="flow-unordered-flow"
    )


def test_taint_only_checked_in_decision_packages(tmp_path):
    src = """\
        def pick():
            return max({1, 2, 3})
    """
    # Same code, hw/ package: not a placement decision site.
    assert not deep(
        tmp_path, {"hw/p.py": src}, rule_id="flow-unordered-flow"
    )
    assert deep(
        tmp_path, {"core/p.py": src}, rule_id="flow-unordered-flow"
    )


def test_taint_does_not_double_report_shallow_lines(tmp_path):
    # max() over a direct dict view is the shallow unordered-placement
    # rule's finding; the deep pass must not add a second one.
    src = """\
        def pick(table):
            return max(table.keys())
    """
    report, _index = deep_lint_paths(
        [make_tree(tmp_path, {"core/p.py": src})], include_shallow=True
    )
    rule_ids = [f.rule_id for f in report.findings]
    assert "flow-unordered-flow" not in rule_ids
    assert "unordered-placement" in rule_ids


# ----------------------------------------------------------------------
# Engine: suppression, baseline, rule selection, dedup
# ----------------------------------------------------------------------


def test_suppression_comment_covers_deep_rules(tmp_path):
    src = """\
        def pick(extents):
            candidates = {e for e in extents}
            # heterolint: disable-next-line=flow-unordered-flow
            return max(candidates)
    """
    report, _index = deep_lint_paths(
        [make_tree(tmp_path, {"core/p.py": src})], include_shallow=False
    )
    assert not report.findings
    assert any(
        f.rule_id == "flow-unordered-flow" for f in report.suppressed
    )


def test_baseline_accepts_and_tracks_stale(tmp_path):
    root = make_tree(tmp_path, {"vmm/s.py": SCAN_BAD})
    report, _index = deep_lint_paths([root], include_shallow=False)
    assert len(report.findings) == 1
    baseline = Baseline.from_findings(report.findings, justification="ok")
    baseline.entries.append(
        BaselineEntry(
            rule="flow-dim-mix", path="gone.py", function="f", message="m"
        )
    )
    filtered, _index = deep_lint_paths(
        [root], include_shallow=False, baseline=baseline
    )
    assert not filtered.findings
    stale = baseline.stale_entries()
    assert len(stale) == 1 and stale[0].path == "gone.py"


def test_baseline_round_trips_through_json(tmp_path):
    baseline = Baseline(
        entries=[
            BaselineEntry(
                rule="flow-protocol-scan",
                path="src/repro/vmm/s.py",
                function="vmm.s.Scanner.scan",
                message="msg",
                justification="because",
            )
        ]
    )
    target = tmp_path / "base.json"
    baseline.save(target)
    loaded = Baseline.load(target)
    assert loaded.entries == baseline.entries
    with pytest.raises(LintError):
        Baseline.load(tmp_path / "missing.json")


def test_rule_ids_select_only_named_deep_rules(tmp_path):
    files = {"core/t.py": MIX_BAD, "vmm/s.py": SCAN_BAD}
    only_scan = deep(tmp_path, files, rule_ids=["flow-protocol-scan"])
    assert {f.rule_id for f in only_scan} == {"flow-protocol-scan"}


def test_unknown_rule_id_is_an_error(tmp_path):
    with pytest.raises(LintError):
        deep(tmp_path, {"core/t.py": MIX_BAD}, rule_ids=["flow-bogus"])


def test_deep_findings_carry_function_anchor(tmp_path):
    hits = deep(tmp_path, {"core/t.py": MIX_BAD})
    assert hits and all(f.function for f in hits)
    assert hits[0].function == "core.t.total"


def test_deep_rule_metadata_covers_all_protocols():
    metadata = deep_rule_metadata()
    for spec in CORE_PROTOCOLS:
        assert spec.protocol_id in metadata
    assert all(rule.startswith("flow-") for rule in metadata)


# ----------------------------------------------------------------------
# AST cache
# ----------------------------------------------------------------------


def test_cache_round_trip_preserves_findings(tmp_path):
    root = make_tree(tmp_path, {"core/t.py": MIX_BAD, "vmm/s.py": SCAN_BAD})
    cache_dir = tmp_path / "cache"
    cold, _ = deep_lint_paths([root], cache_dir=cache_dir)
    assert (
        len(list(cache_dir.glob("heteroflow-ast-*.pickle"))) == 1
    )
    warm, _ = deep_lint_paths([root], cache_dir=cache_dir)
    key = lambda f: (f.path, f.line, f.col, f.rule_id, f.message)
    assert sorted(map(key, warm.findings)) == sorted(map(key, cold.findings))


def test_cache_invalidated_by_source_change(tmp_path):
    root = make_tree(tmp_path, {"core/t.py": MIX_BAD})
    cache_dir = tmp_path / "cache"
    first, _ = deep_lint_paths([root], cache_dir=cache_dir)
    assert first.findings
    (root / "core" / "t.py").write_text(
        textwrap.dedent(MIX_GOOD), encoding="utf-8"
    )
    second, _ = deep_lint_paths([root], cache_dir=cache_dir)
    assert not second.findings


def test_cache_rejects_other_interpreters_payload(tmp_path):
    # The filename is tagged per Python minor, but a mis-keyed CI cache
    # can restore another interpreter's file under this name — the
    # payload-embedded version tag must reject it on load.
    import pickle

    from repro.devtools.flow.cache import _cache_path, load_contexts

    root = make_tree(tmp_path, {"core/t.py": MIX_BAD})
    cache_dir = tmp_path / "cache"
    deep_lint_paths([root], cache_dir=cache_dir)
    cache_file = _cache_path(cache_dir)
    payload = pickle.loads(cache_file.read_bytes())
    assert len(payload["python"]) == 2

    payload["python"] = (3, 999)
    cache_file.write_bytes(pickle.dumps(payload))
    files = sorted(root.rglob("*.py"))
    assert load_contexts(cache_dir, files) == {}

    report, _ = deep_lint_paths([root], cache_dir=cache_dir)
    assert report.findings  # re-parsed from source, analysis intact


def test_corrupt_cache_degrades_gracefully(tmp_path):
    root = make_tree(tmp_path, {"core/t.py": MIX_BAD})
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    for tag in cache_dir.glob("*"):
        tag.unlink()
    deep_lint_paths([root], cache_dir=cache_dir)
    for pickle_file in cache_dir.glob("heteroflow-ast-*.pickle"):
        pickle_file.write_bytes(b"not a pickle")
    report, _ = deep_lint_paths([root], cache_dir=cache_dir)
    assert report.findings  # analysis still ran


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------

# Trimmed SARIF 2.1.0 schema: the structural subset GitHub code
# scanning actually validates (sarifLog -> runs -> tool/results ->
# locations), kept offline so the test needs no network.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0
                                },
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error"
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    }
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _validate_sarif(payload):
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(payload, SARIF_SCHEMA)


def test_sarif_output_validates_and_splits_tools(tmp_path):
    files = {
        "core/t.py": MIX_BAD,  # deep finding -> heteroflow run
        "core/magic.py": "x = 4096\n",  # shallow finding -> heterolint run
    }
    report, _index = deep_lint_paths(
        [make_tree(tmp_path, files)], include_shallow=True
    )
    payload = report_to_sarif(report, combined_rule_metadata())
    _validate_sarif(payload)
    tool_names = {
        run["tool"]["driver"]["name"] for run in payload["runs"]
    }
    assert tool_names == {"heterolint", "heteroflow"}
    for run in payload["runs"]:
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rules[result["ruleIndex"]] == result["ruleId"]


def test_sarif_four_tool_runs_with_stable_namespaces(tmp_path):
    # One run object per tool when shallow lint, deep flow, effect, and
    # sanitizer findings land in the same report.
    files = {
        "core/t.py": MIX_BAD,  # flow- -> heteroflow
        "core/magic.py": "x = 4096\n",  # bare id -> heterolint
        "sim/parallel.py": """\
            from repro.sim.stats import record

            WORKER_ENTRY_POINTS = ("run_spec",)

            def run_spec(spec):
                return record(spec)
        """,
        "sim/stats.py": """\
            _MEMO = {}

            def record(spec):
                _MEMO[spec] = 1
                return _MEMO
        """,  # effect- -> heteroeffect
    }
    report, _index = deep_lint_paths(
        [make_tree(tmp_path, files)],
        include_shallow=True,
        include_effects=True,
    )
    report.findings.append(
        Finding(
            rule_id="san-double-allocate",
            path="src/repro/guestos/kernel.py",
            line=10,
            col=0,
            message="frame allocated twice without an intervening free",
        )
    )
    payload = report_to_sarif(report, combined_rule_metadata())
    _validate_sarif(payload)
    by_name = {
        run["tool"]["driver"]["name"]: run for run in payload["runs"]
    }
    assert set(by_name) == {
        "heterolint", "heteroflow", "heteroeffect", "framesan",
    }
    prefix = {
        "heterolint": ("",),
        "heteroflow": ("flow-",),
        "heteroeffect": ("effect-",),
        "framesan": ("san-",),
    }
    for name, run in by_name.items():
        assert run["results"], name
        for result in run["results"]:
            rule_id = result["ruleId"]
            if name == "heterolint":
                assert not rule_id.startswith(("flow-", "san-", "effect-"))
            else:
                assert rule_id.startswith(prefix[name])
        if name == "framesan":
            # Sanitizer defect classes carry no static rationale table.
            continue
        # Every rule in the table has a real rationale, not an echo.
        for rule in run["tool"]["driver"]["rules"]:
            assert rule["shortDescription"]["text"] != rule["id"]


def test_sarif_clean_report_is_still_valid(tmp_path):
    report, _index = deep_lint_paths(
        [make_tree(tmp_path, {"core/ok.py": "x = 1\n"})]
    )
    payload = report_to_sarif(report)
    _validate_sarif(payload)
    assert payload["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_deep_lint_and_sarif(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no repo baseline auto-load
    root = make_tree(tmp_path, {"vmm/s.py": SCAN_BAD})
    assert main(["lint", "--deep", str(root)]) == 1
    assert "flow-protocol-scan" in capsys.readouterr().out

    assert main(["lint", "--deep", "--format", "sarif", str(root)]) == 1
    payload = json.loads(capsys.readouterr().out)
    _validate_sarif(payload)
    assert payload["runs"]


def test_cli_write_baseline_then_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    root = make_tree(tmp_path, {"vmm/s.py": SCAN_BAD})
    target = tmp_path / "base.json"
    assert (
        main(
            [
                "lint", "--deep", "--write-baseline",
                "--baseline", str(target), str(root),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert target.exists()
    assert (
        main(["lint", "--deep", "--baseline", str(target), str(root)]) == 0
    )


def test_cli_list_rules_includes_deep(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in deep_rule_metadata():
        assert rule_id in out
