"""Multi-VM simulation."""

import pytest

from repro.config import SimConfig
from repro.core import make_policy
from repro.errors import ConfigurationError
from repro.guestos.balloon import TierReservation
from repro.guestos.numa import NodeTier
from repro.hw.cache import CacheConfig
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.mem.extent import PageType
from repro.sim.multi_vm import MultiVmSimulation, VmSpec
from repro.units import MIB, pages_of_bytes
from repro.vmm.drf import WeightedDrf
from repro.vmm.sharing import MaxMinSharing
from repro.workloads.base import RegionSpec, StatisticalWorkload


def devices(fast_mib=32, slow_mib=128):
    return {
        NodeTier.FAST: DRAM.with_capacity(fast_mib * MIB),
        NodeTier.SLOW: NVM_PCM.with_capacity(slow_mib * MIB),
    }


def workload(name="w", pages=1024, alloc_epoch=0):
    return StatisticalWorkload(
        name=name,
        mlp=4.0,
        instructions_per_epoch=1e6,
        accesses_per_epoch=5000.0,
        resident=[
            RegionSpec(
                "data", PageType.HEAP, pages, reuse=0.7, access_share=1.0,
                alloc_epoch=alloc_epoch,
            ),
        ],
    )


def vm(name, wl, fast=(1024, 2048), slow=(4096, 8192)):
    return VmSpec(
        name=name,
        workload=wl,
        policy=make_policy("heap-od"),
        reservations={
            NodeTier.FAST: TierReservation(*fast),
            NodeTier.SLOW: TierReservation(*slow),
        },
    )


def test_two_vms_run_and_report():
    sim = MultiVmSimulation(
        devices(),
        [vm("a", workload("a")), vm("b", workload("b"))],
        sharing_policy=MaxMinSharing(),
    )
    results = sim.run(5)
    assert set(results) == {"a", "b"}
    for result in results.values():
        assert result.stats.epochs == 5
        assert result.stats.runtime_ns > 0


def test_llc_partitioned_across_vms():
    config = SimConfig(
        fast_capacity_bytes=32 * MIB,
        slow_capacity_bytes=128 * MIB,
        llc=CacheConfig(capacity_bytes=16 * MIB),
    )
    sim = MultiVmSimulation(
        devices(),
        [vm("a", workload("a")), vm("b", workload("b"))],
        sharing_policy=MaxMinSharing(),
        config=config,
    )
    for engine in sim.engines.values():
        assert engine.cache.config.capacity_bytes == 8 * MIB


def test_empty_vm_list_rejected():
    with pytest.raises(ConfigurationError):
        MultiVmSimulation(devices(), [], sharing_policy=MaxMinSharing())


def test_boot_reservations_respect_machine_capacity():
    fast_total = pages_of_bytes(32 * MIB)
    with pytest.raises(Exception):
        MultiVmSimulation(
            devices(),
            [
                vm("a", workload("a"), fast=(fast_total, fast_total)),
                vm("b", workload("b"), fast=(fast_total, fast_total)),
            ],
            sharing_policy=MaxMinSharing(),
        )


def test_late_grower_balloons_from_pool_under_drf():
    """A VM whose demand grows later can still balloon free machine
    memory under DRF."""
    slow_total = pages_of_bytes(128 * MIB)
    grower = vm(
        "grower",
        workload("grower", pages=6000, alloc_epoch=2),
        slow=(4096, slow_total),
    )
    small = vm("small", workload("small", pages=512))
    sim = MultiVmSimulation(
        devices(), [grower, small], sharing_policy=WeightedDrf()
    )
    results = sim.run(6)
    domain = next(
        d for d in sim.hypervisor.domains.values() if d.name == "grower"
    )
    assert domain.pages(NodeTier.SLOW) > 4096  # ballooned beyond the min
    assert results["grower"].stats.dropped_allocation_pages == 0
