"""VMM reverse map."""

import pytest

from repro.errors import MigrationError
from repro.mem.frames import FrameRange
from repro.mem.rmap import ReverseMap, RmapOwner


def test_register_and_lookup():
    rmap = ReverseMap()
    owner = RmapOwner(domain_id=1, extent_id=42)
    rmap.register(FrameRange(100, 50), owner)
    assert rmap.lookup(100) == owner
    assert rmap.lookup(149) == owner
    assert rmap.lookup(150) is None
    assert rmap.lookup(99) is None
    assert len(rmap) == 1


def test_multiple_disjoint_ranges():
    rmap = ReverseMap()
    a = RmapOwner(1, 1)
    b = RmapOwner(1, 2)
    rmap.register(FrameRange(0, 10), a)
    rmap.register(FrameRange(100, 10), b)
    assert rmap.lookup(5) == a
    assert rmap.lookup(105) == b
    assert rmap.lookup(50) is None


def test_overlap_rejected():
    rmap = ReverseMap()
    rmap.register(FrameRange(0, 10), RmapOwner(1, 1))
    with pytest.raises(MigrationError):
        rmap.register(FrameRange(5, 10), RmapOwner(1, 2))


def test_duplicate_start_rejected():
    rmap = ReverseMap()
    rmap.register(FrameRange(50, 5), RmapOwner(1, 1))
    with pytest.raises(MigrationError):
        rmap.register(FrameRange(50, 3), RmapOwner(1, 2))


def test_unregister():
    rmap = ReverseMap()
    frames = FrameRange(10, 10)
    rmap.register(frames, RmapOwner(1, 1))
    rmap.unregister(frames)
    assert rmap.lookup(15) is None
    assert len(rmap) == 0


def test_unregister_unknown_rejected():
    rmap = ReverseMap()
    with pytest.raises(MigrationError):
        rmap.unregister(FrameRange(10, 10))
    rmap.register(FrameRange(10, 10), RmapOwner(1, 1))
    with pytest.raises(MigrationError):
        rmap.unregister(FrameRange(10, 5))  # wrong extent shape


def test_out_of_order_registration():
    rmap = ReverseMap()
    rmap.register(FrameRange(100, 10), RmapOwner(1, 2))
    rmap.register(FrameRange(0, 10), RmapOwner(1, 1))
    rmap.register(FrameRange(50, 10), RmapOwner(1, 3))
    assert rmap.lookup(55).extent_id == 3
    assert rmap.lookup(5).extent_id == 1
