"""Experiment drivers (light smoke runs) and the report formatter."""

import pytest

from repro.experiments import (
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig9,
    run_fig11,
    run_table1,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.experiments.report import format_table
from repro.hw.throttle import ThrottleConfig


# ----------------------------------------------------------------------
# Report formatter
# ----------------------------------------------------------------------

def test_format_table_alignment_and_floats():
    rows = [
        {"name": "a", "value": 1.23456},
        {"name": "bbb", "value": 12.0},
    ]
    text = format_table(rows, title="T", float_digits=2)
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.23" in text and "12.00" in text
    # All rows padded to equal width.
    assert len(set(len(line) for line in lines[1:])) == 1


def test_format_table_empty_and_column_subset():
    assert "(empty)" in format_table([], title="x")
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


# ----------------------------------------------------------------------
# Static tables
# ----------------------------------------------------------------------

def test_static_tables_have_expected_shapes():
    assert len(run_table1()) == 3
    assert len(run_table3()) == 4
    assert len(run_table5()) == 4
    assert len(run_table6()) == 3


# ----------------------------------------------------------------------
# Dynamic figures — tiny smoke runs (shapes asserted by the benchmarks)
# ----------------------------------------------------------------------

def test_table4_smoke():
    rows = run_table4(apps=("nginx",), epochs=5)
    assert rows[0]["app"] == "nginx"
    assert rows[0]["mpki"] > 0


def test_fig1_smoke():
    rows = run_fig1(
        apps=("nginx",), epochs=5,
        sweep=(ThrottleConfig(5, 9),), include_remote_numa=True,
    )
    row = rows[0]
    assert row["L:5,B:9"] >= 1.0
    assert row["remote-numa"] >= 1.0


def test_fig3_smoke():
    rows = run_fig3(apps=("nginx",), ratios=(0.5,), epochs=5)
    assert rows[0]["1/2"] >= 1.0


def test_fig4_smoke():
    rows = run_fig4(apps=("leveldb",), epochs=10)
    assert rows[0]["total_millions"] > 0


def test_fig6_fig7_smoke():
    lat = run_fig6(wss_gib=(0.25,), policies=("slowmem-only",), epochs=4)
    assert lat[0]["slowmem-only"] > 0
    bw = run_fig7(wss_gib=(0.5,), policies=("slowmem-only",), epochs=4)
    assert bw[0]["slowmem-only"] > 0


def test_fig9_smoke():
    rows = run_fig9(
        apps=("nginx",), ratios=(0.25,), policies=("heap-od",), epochs=5
    )
    assert "heap-od" in rows[0]
    assert "fastmem-only" in rows[0]


def test_fig11_smoke():
    rows = run_fig11(
        apps=("nginx",), ratios=(0.25,), policies=("hetero-lru",), epochs=5
    )
    assert "hetero-lru" in rows[0]
