"""Zones and heterogeneity-aware NUMA nodes."""

import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.guestos.numa import (
    DMA_ZONE_BYTES,
    MemoryNode,
    NodeTier,
    build_node,
)
from repro.guestos.zone import ZoneKind, make_zone, zone_preference
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.mem.extent import PageType
from repro.units import MIB, PAGE_SIZE, pages_of_bytes


def test_tier_ranking():
    assert NodeTier.FAST.rank < NodeTier.MEDIUM.rank < NodeTier.SLOW.rank


def test_fast_node_has_single_unified_zone():
    node = build_node(0, NodeTier.FAST, DRAM.with_capacity(64 * MIB))
    assert [zone.kind for zone in node.zones] == [ZoneKind.UNIFIED]
    assert node.is_fastmem


def test_slow_node_has_dma_and_normal_zones():
    node = build_node(1, NodeTier.SLOW, NVM_PCM.with_capacity(256 * MIB))
    kinds = [zone.kind for zone in node.zones]
    assert kinds == [ZoneKind.DMA, ZoneKind.NORMAL]
    assert not node.is_fastmem
    dma = node.zones[0]
    assert dma.total_pages == DMA_ZONE_BYTES // PAGE_SIZE


def test_zone_preference_unified_serves_everything():
    for page_type in PageType:
        assert ZoneKind.UNIFIED in zone_preference(page_type)


def test_dma_pages_prefer_dma_zone():
    assert zone_preference(PageType.DMA)[0] is ZoneKind.DMA


def test_node_allocate_and_free_roundtrip():
    node = build_node(0, NodeTier.FAST, DRAM.with_capacity(16 * MIB))
    total = node.total_pages
    ranges = node.allocate_pages(100, PageType.HEAP)
    assert sum(r.count for r in ranges) == 100
    assert node.used_pages == 100
    node.free_ranges(ranges)
    assert node.free_pages == total


def test_node_allocation_respects_zone_eligibility():
    node = build_node(1, NodeTier.SLOW, NVM_PCM.with_capacity(64 * MIB))
    # Heap cannot come out of the DMA zone even under pressure.
    normal_pages = node.zones[1].free_pages
    node.allocate_pages(normal_pages, PageType.HEAP)
    with pytest.raises(OutOfMemoryError):
        node.allocate_pages(1, PageType.HEAP)
    # DMA pages still available.
    assert node.allocate_pages(1, PageType.DMA)


def test_allocate_up_to_partial():
    node = build_node(0, NodeTier.FAST, DRAM.with_capacity(4 * MIB))
    got = node.allocate_up_to(node.total_pages + 500, PageType.HEAP)
    assert sum(r.count for r in got) == node.total_pages


def test_free_pages_for_counts_only_eligible_zones():
    node = build_node(1, NodeTier.SLOW, NVM_PCM.with_capacity(64 * MIB))
    assert node.free_pages_for(PageType.HEAP) < node.free_pages
    assert node.free_pages_for(PageType.DMA) == node.free_pages


def test_foreign_frame_free_rejected():
    node = build_node(0, NodeTier.FAST, DRAM.with_capacity(4 * MIB))
    from repro.mem.frames import FrameRange

    with pytest.raises(OutOfMemoryError):
        node.free_ranges([FrameRange(10_000_000, 1)])


def test_zone_watermarks():
    zone = make_zone(ZoneKind.NORMAL, 0, 1000)
    assert zone.min_watermark_pages <= zone.low_watermark_pages
    assert not zone.under_pressure
    zone.buddy.allocate_pages(990)
    assert zone.under_pressure


def test_zero_capacity_node_rejected():
    with pytest.raises(ConfigurationError):
        build_node(0, NodeTier.FAST, DRAM.with_capacity(0))


def test_under_pressure_propagates_from_zones():
    node = build_node(0, NodeTier.FAST, DRAM.with_capacity(4 * MIB))
    assert not node.under_pressure
    node.allocate_pages(node.total_pages - 1, PageType.HEAP)
    assert node.under_pressure


def test_base_frame_offsets_disjoint():
    fast = build_node(0, NodeTier.FAST, DRAM.with_capacity(4 * MIB), 0)
    slow = build_node(
        1, NodeTier.SLOW, NVM_PCM.with_capacity(4 * MIB),
        pages_of_bytes(4 * MIB),
    )
    fast_ranges = fast.allocate_pages(10, PageType.HEAP)
    slow_ranges = slow.allocate_pages(10, PageType.HEAP)
    fast_frames = {
        f for r in fast_ranges for f in range(r.start, r.end)
    }
    slow_frames = {
        f for r in slow_ranges for f in range(r.start, r.end)
    }
    assert not fast_frames & slow_frames
