"""Buddy allocator."""

import pytest

from repro.errors import AllocationError, OutOfMemoryError
from repro.guestos.buddy import BuddyAllocator


def test_block_allocation_sizes():
    buddy = BuddyAllocator(0, 1024)
    block = buddy.allocate_block(4)
    assert block.count == 16
    assert block.start % 16 == 0
    assert buddy.free_frames == 1024 - 16


def test_block_alignment_respects_base():
    buddy = BuddyAllocator(1000, 1024)
    block = buddy.allocate_block(5)
    assert (block.start - 1000) % 32 == 0


def test_split_and_coalesce_roundtrip():
    buddy = BuddyAllocator(0, 256)
    blocks = [buddy.allocate_block(0) for _ in range(256)]
    assert buddy.free_frames == 0
    for block in blocks:
        buddy.free_span(block.start, block.count)
    assert buddy.free_frames == 256
    buddy.check_invariants()
    # Everything coalesced back: a max-order block is available again.
    assert buddy.largest_free_order() == 8


def test_allocate_pages_exact_total():
    buddy = BuddyAllocator(0, 1024)
    ranges = buddy.allocate_pages(300)
    assert sum(r.count for r in ranges) == 300
    assert buddy.free_frames == 724
    buddy.check_invariants()


def test_allocate_pages_rollback_on_failure():
    buddy = BuddyAllocator(0, 128)
    buddy.allocate_pages(100)
    free_before = buddy.free_frames
    with pytest.raises(OutOfMemoryError):
        buddy.allocate_pages(50)
    assert buddy.free_frames == free_before
    buddy.check_invariants()


def test_free_span_accepts_fragments():
    """Fragments of an allocated block (per-CPU splits) free cleanly."""
    buddy = BuddyAllocator(0, 64)
    block = buddy.allocate_block(4)  # 16 frames
    buddy.free_span(block.start, 5)
    buddy.free_span(block.start + 5, 11)
    assert buddy.free_frames == 64
    buddy.check_invariants()


def test_double_free_detected_exactly():
    buddy = BuddyAllocator(0, 64)
    block = buddy.allocate_block(3)
    buddy.free_span(block.start, block.count)
    with pytest.raises(AllocationError):
        buddy.free_span(block.start, 1)


def test_partial_overlap_free_detected():
    buddy = BuddyAllocator(0, 64)
    block = buddy.allocate_block(3)  # 8 frames
    buddy.free_span(block.start, 4)
    with pytest.raises(AllocationError):
        buddy.free_span(block.start + 2, 4)  # overlaps the freed half


def test_free_outside_span_rejected():
    buddy = BuddyAllocator(0, 64)
    with pytest.raises(AllocationError):
        buddy.free_span(100, 4)


def test_non_power_of_two_span():
    buddy = BuddyAllocator(0, 1000)
    assert buddy.free_frames == 1000
    ranges = buddy.allocate_pages(1000)
    assert sum(r.count for r in ranges) == 1000
    assert buddy.free_frames == 0
    for r in ranges:
        buddy.free_span(r.start, r.count)
    buddy.check_invariants()


def test_fragmentation_fallback_to_smaller_orders():
    buddy = BuddyAllocator(0, 64)
    # Allocate all order-0 blocks, free every other one: max fragmentation.
    blocks = [buddy.allocate_block(0) for _ in range(64)]
    for block in blocks[::2]:
        buddy.free_span(block.start, 1)
    assert buddy.largest_free_order() == 0
    ranges = buddy.allocate_pages(16)  # must assemble from singletons
    assert sum(r.count for r in ranges) == 16
    buddy.check_invariants()


def test_is_free_queries():
    buddy = BuddyAllocator(0, 16)
    block = buddy.allocate_block(2)
    assert not buddy.is_free(block.start)
    buddy.free_span(block.start, block.count)
    assert buddy.is_free(block.start)
    with pytest.raises(AllocationError):
        buddy.is_free(999)


def test_oversized_request_rejected():
    buddy = BuddyAllocator(0, 64)
    with pytest.raises(OutOfMemoryError):
        buddy.allocate_pages(65)
    with pytest.raises(AllocationError):
        buddy.allocate_pages(0)
    with pytest.raises(AllocationError):
        buddy.allocate_block(99)
