"""Meta-test: the shipped source tree must lint clean.

Any new heterolint finding is either a real bug (fix it) or an
intentional exception (add a ``# heterolint: disable-next-line=...``
comment explaining why).  See docs/devtools.md.
"""

from __future__ import annotations

import pathlib

import repro
from repro.devtools.lint import lint_paths


def test_shipped_tree_has_zero_unsuppressed_findings():
    package_dir = pathlib.Path(repro.__file__).parent
    report = lint_paths([package_dir])
    assert report.files_checked >= 80
    assert report.findings == [], "\n" + report.format_human()
