"""Hypervisor facade, balloon front-end/back-end integration."""

import pytest

from repro.errors import ConfigurationError, SharingError
from repro.guestos.balloon import BalloonFrontend, TierReservation
from repro.guestos.kernel import GuestKernel
from repro.guestos.numa import NodeTier
from repro.hw.memdevice import DRAM, NVM_PCM
from repro.mem.extent import PageType
from repro.units import MIB, pages_of_bytes
from repro.vmm.drf import WeightedDrf
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.sharing import MaxMinSharing


def make_hypervisor(fast_mib=64, slow_mib=256) -> Hypervisor:
    return Hypervisor(
        {
            NodeTier.FAST: DRAM.with_capacity(fast_mib * MIB),
            NodeTier.SLOW: NVM_PCM.with_capacity(slow_mib * MIB),
        },
        sharing_policy=MaxMinSharing(),
    )


def boot_guest(hypervisor, name="vm", fast=(2048, 4096), slow=(8192, 16384)):
    domain = hypervisor.create_domain(
        name,
        {
            NodeTier.FAST: TierReservation(*fast),
            NodeTier.SLOW: TierReservation(*slow),
        },
    )
    nodes = hypervisor.build_guest_nodes(domain)
    kernel = GuestKernel(
        nodes, cpus=2, balloon=hypervisor.make_balloon_frontend(domain)
    )
    hypervisor.attach_kernel(domain, kernel)
    return domain, kernel


def test_create_domain_grants_boot_minimum():
    hypervisor = make_hypervisor()
    domain, _ = boot_guest(hypervisor)
    assert domain.pages(NodeTier.FAST) == 2048
    assert domain.pages(NodeTier.SLOW) == 8192
    assert (
        hypervisor.machine.free_pages(NodeTier.FAST)
        == hypervisor.machine.total_pages(NodeTier.FAST) - 2048
    )


def test_guest_nodes_sized_at_max_with_unreserved_hidden():
    hypervisor = make_hypervisor()
    domain, kernel = boot_guest(hypervisor)
    fast_node = kernel.node_for_tier(NodeTier.FAST)
    assert fast_node.total_pages == 4096
    assert kernel.hidden_pages(fast_node.node_id) == 2048
    assert fast_node.free_pages == 2048


def test_per_domain_services():
    hypervisor = make_hypervisor()
    domain, kernel = boot_guest(hypervisor)
    assert hypervisor.channel(domain.domain_id).domain_id == domain.domain_id
    assert hypervisor.tracker(domain.domain_id) is not None
    assert hypervisor.kernel(domain.domain_id) is kernel
    with pytest.raises(SharingError):
        hypervisor.channel(99)
    with pytest.raises(SharingError):
        hypervisor.kernel(99)


def test_double_attach_rejected():
    hypervisor = make_hypervisor()
    domain, kernel = boot_guest(hypervisor)
    with pytest.raises(SharingError):
        hypervisor.attach_kernel(domain, kernel)


def test_balloon_request_reveals_pages_into_guest():
    hypervisor = make_hypervisor()
    domain, kernel = boot_guest(hypervisor)
    fast_node = kernel.node_for_tier(NodeTier.FAST)
    granted = kernel.balloon.request(NodeTier.FAST, 1000)
    assert granted.get(NodeTier.FAST) == 1000
    kernel.reveal_pages(fast_node.node_id, 1000)
    assert fast_node.free_pages == 3048
    assert domain.pages(NodeTier.FAST) == 3048


def test_balloon_respects_tier_maximum():
    hypervisor = make_hypervisor()
    domain, kernel = boot_guest(hypervisor, fast=(2048, 2048))
    granted = kernel.balloon.request(NodeTier.FAST, 1000)
    assert granted == {}  # headroom is zero: max == min


def test_balloon_inflate_returns_pages_to_machine():
    hypervisor = make_hypervisor()
    domain, kernel = boot_guest(hypervisor)
    free_before = hypervisor.machine.free_pages(NodeTier.FAST)
    kernel.balloon.request(NodeTier.FAST, 500)
    returned = kernel.balloon.inflate(NodeTier.FAST, 300)
    assert returned == 300
    assert hypervisor.machine.free_pages(NodeTier.FAST) == free_before - 200
    # Inflation never digs below the boot minimum.
    assert kernel.balloon.inflate(NodeTier.FAST, 10_000) == 200


def test_balloon_fallback_to_other_tier():
    hypervisor = make_hypervisor(fast_mib=16)
    # Reserve the whole FastMem pool at boot; requests must fall back.
    fast_total = hypervisor.machine.total_pages(NodeTier.FAST)
    domain, kernel = boot_guest(
        hypervisor, fast=(fast_total, fast_total * 2)
    )
    granted = kernel.balloon.request(
        NodeTier.FAST, 512, allow_fallback=True
    )
    assert granted.get(NodeTier.FAST, 0) == 0
    assert granted.get(NodeTier.SLOW, 0) > 0


def test_allocation_balloons_transparently():
    """A region larger than the revealed reservation triggers the
    on-demand driver (Figure 5 steps 1-3)."""
    hypervisor = make_hypervisor()
    domain, kernel = boot_guest(hypervisor)
    extents = kernel.allocate_region("big", PageType.HEAP, 3000, [0, 1])
    assert sum(e.pages for e in extents) == 3000
    assert domain.pages(NodeTier.FAST) > 2048  # ballooned beyond the min


def test_two_domains_contend_for_machine_pool():
    hypervisor = make_hypervisor(fast_mib=16)
    fast_total = hypervisor.machine.total_pages(NodeTier.FAST)
    half = fast_total // 2
    boot_guest(hypervisor, name="a", fast=(half, fast_total))
    boot_guest(hypervisor, name="b", fast=(half, fast_total))
    assert hypervisor.machine.free_pages(NodeTier.FAST) == 0
    with pytest.raises(Exception):
        hypervisor.create_domain(
            "c", {NodeTier.FAST: TierReservation(1, 1)}
        )


def test_frontend_validates_backend_grants():
    class EvilBackend:
        def request_pages(self, domain_id, tier, pages, allow_fallback):
            return {tier: -5}

        def return_pages(self, domain_id, tier, pages):
            pass

    frontend = BalloonFrontend(
        1, EvilBackend(), {NodeTier.FAST: TierReservation(0, 100)}
    )
    with pytest.raises(ConfigurationError):
        frontend.request(NodeTier.FAST, 10)
