"""GuestKernel: allocation routing, stats, movement, reclaim."""

import pytest

from conftest import make_kernel
from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.extent import ExtentState, PageType


# ----------------------------------------------------------------------
# Region allocation
# ----------------------------------------------------------------------

def test_allocation_follows_preference(kernel):
    extents = kernel.allocate_region("r1", PageType.HEAP, 100, [0, 1])
    assert all(extent.node_id == 0 for extent in extents)
    extents = kernel.allocate_region("r2", PageType.HEAP, 100, [1, 0])
    assert all(extent.node_id == 1 for extent in extents)


def test_allocation_spills_to_next_preference(kernel):
    fast_pages = kernel.nodes[0].free_pages_for(PageType.HEAP)
    extents = kernel.allocate_region(
        "big", PageType.HEAP, fast_pages + 500, [0, 1]
    )
    placements = {extent.node_id for extent in extents}
    assert placements == {0, 1}
    total = sum(extent.pages for extent in extents)
    assert total == fast_pages + 500


def test_allocation_registers_vma_lru_and_cache(kernel):
    (extent,) = kernel.allocate_region("io", PageType.PAGE_CACHE, 64, [1])
    assert kernel.address_space.find(
        kernel.address_space.vmas["io"].start_vpn
    )
    assert kernel.lru[1].contains(extent)
    assert kernel.page_cache.is_resident(extent)


def test_small_allocations_take_percpu_path(kernel):
    kernel.allocate_region("tiny", PageType.SLAB, 4, [0])
    assert kernel.percpu.stats.refills == 1


def test_duplicate_region_rejected(kernel):
    kernel.allocate_region("r", PageType.HEAP, 10, [0])
    with pytest.raises(AllocationError):
        kernel.allocate_region("r", PageType.HEAP, 10, [0])


def test_oom_rolls_back_cleanly(kernel):
    total = sum(node.free_pages for node in kernel.nodes.values())
    with pytest.raises(OutOfMemoryError):
        kernel.allocate_region("huge", PageType.HEAP, total + 1000, [0, 1])
    # Nothing leaked: the region and its VMA are gone, memory restored.
    assert not kernel.has_region("huge")
    assert "huge" not in kernel.address_space.vmas
    assert kernel.allocate_region("ok", PageType.HEAP, 100, [0])


def test_last_resort_uses_any_node(kernel):
    # Preference names only the fast node; overflow lands on slow anyway.
    fast_pages = kernel.nodes[0].free_pages_for(PageType.HEAP)
    extents = kernel.allocate_region(
        "over", PageType.HEAP, fast_pages + 100, [0]
    )
    assert {extent.node_id for extent in extents} == {0, 1}


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------

def test_alloc_stats_track_fast_hits_and_misses(kernel):
    kernel.begin_epoch(0)
    kernel.allocate_region("a", PageType.HEAP, 100, [0, 1])
    kernel.allocate_region("b", PageType.PAGE_CACHE, 50, [1])
    heap = kernel.epoch_stats[PageType.HEAP]
    cache = kernel.epoch_stats[PageType.PAGE_CACHE]
    assert heap.requested_pages == 100
    assert heap.fast_granted_pages == 100
    assert heap.miss_ratio == 0.0
    assert cache.fast_granted_pages == 0
    assert cache.miss_ratio == 1.0


def test_epoch_stats_reset_cumulative_persist(kernel):
    kernel.begin_epoch(0)
    kernel.allocate_region("a", PageType.HEAP, 100, [0, 1])
    kernel.begin_epoch(1)
    assert kernel.epoch_stats[PageType.HEAP].requested_pages == 0
    assert kernel.cumulative_stats[PageType.HEAP].requested_pages == 100


def test_page_distribution_counts_pagetable_overhead(kernel):
    kernel.allocate_region("a", PageType.HEAP, 1024, [1])
    dist = kernel.distribution
    assert dist.allocated[PageType.HEAP] == 1024
    assert dist.allocated[PageType.PAGE_TABLE] == 2  # 1024/512 PTE pages
    assert dist.fraction(PageType.HEAP) > 0.99


def test_epoch_miss_ratios_only_for_requested_types(kernel):
    kernel.begin_epoch(0)
    kernel.allocate_region("a", PageType.HEAP, 10, [0])
    ratios = kernel.epoch_miss_ratios()
    assert PageType.HEAP in ratios
    assert PageType.SLAB not in ratios


# ----------------------------------------------------------------------
# Free
# ----------------------------------------------------------------------

def test_free_region_returns_pages(kernel):
    before = kernel.nodes[0].free_pages
    kernel.allocate_region("r", PageType.HEAP, 128, [0])
    assert kernel.free_region("r") == 128
    assert kernel.nodes[0].free_pages == before
    assert not kernel.has_region("r")
    with pytest.raises(AllocationError):
        kernel.free_region("r")


def test_free_dirty_io_region_writes_back_first(kernel):
    kernel.allocate_region("io", PageType.PAGE_CACHE, 32, [1], dirty=True)
    kernel.free_region("io")
    assert kernel.page_cache.stats.writeback_pages == 32


def test_free_counts_fast_pages_freed_this_epoch(kernel):
    kernel.begin_epoch(0)
    kernel.allocate_region("r", PageType.HEAP, 64, [0])
    kernel.begin_epoch(1)
    kernel.free_region("r")
    assert kernel.epoch_freed_fast_pages == 64


# ----------------------------------------------------------------------
# Touch / LRU integration
# ----------------------------------------------------------------------

def test_touch_region_updates_temperature_and_bits(kernel):
    kernel.begin_epoch(3)
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 10, [0])
    kernel.touch_region("r", 500.0, write=True)
    assert extent.accessed and extent.dirty
    assert extent.temperature == pytest.approx(500.0)
    assert extent.last_access_epoch == 3


def test_touch_splits_accesses_by_extent_pages(kernel):
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("r", PageType.HEAP, fast + fast, [0, 1])
    kernel.touch_region("r", 1000.0)
    extents = kernel.region_extents("r")
    for extent in extents:
        expected = 1000.0 * extent.pages / (2 * fast)
        assert extent.temperature == pytest.approx(expected)


# ----------------------------------------------------------------------
# move_extent (guest-controlled migration)
# ----------------------------------------------------------------------

def test_move_extent_relocates(kernel):
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 64, [0])
    moved = kernel.move_extent(extent, 1)
    assert moved == 64
    assert extent.node_id == 1
    assert kernel.lru[1].contains(extent)
    assert not kernel.lru[0].contains(extent)


def test_move_extent_same_node_is_noop(kernel):
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 64, [0])
    assert kernel.move_extent(extent, 0) == 0


def test_move_extent_preserves_inactive_state(kernel):
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 64, [0])
    kernel.lru[0].deactivate(extent)
    kernel.move_extent(extent, 1)
    assert extent.state is ExtentState.INACTIVE


def test_move_rejects_unmigratable_types(kernel):
    (extent,) = kernel.allocate_region("pt", PageType.PAGE_TABLE, 8, [1])
    with pytest.raises(AllocationError):
        kernel.move_extent(extent, 0)


def test_move_writes_back_dirty_io(kernel):
    (extent,) = kernel.allocate_region(
        "io", PageType.PAGE_CACHE, 32, [1], dirty=True
    )
    kernel.move_extent(extent, 0)
    assert not kernel.page_cache.is_dirty(extent)


def test_move_raises_when_target_full(kernel):
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("fill", PageType.HEAP, fast, [0])
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 64, [1])
    with pytest.raises(OutOfMemoryError):
        kernel.move_extent(extent, 0)


# ----------------------------------------------------------------------
# split_extent
# ----------------------------------------------------------------------

def test_split_extent_divides_pages_and_frames(kernel):
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 100, [0])
    sibling = kernel.split_extent(extent, 30)
    assert extent.pages == 30
    assert sibling.pages == 70
    assert sum(fr.count for fr in extent.frames) == 30
    assert sum(fr.count for fr in sibling.frames) == 70
    assert kernel.regions["r"] == [extent.extent_id, sibling.extent_id]
    assert kernel.lru[0].contains(sibling)
    # Freeing the region releases both pieces.
    assert kernel.free_region("r") == 100


def test_split_extent_divides_temperature(kernel):
    kernel.begin_epoch(0)
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 100, [0])
    kernel.touch_region("r", 1000.0)
    sibling = kernel.split_extent(extent, 50)
    assert extent.temperature == pytest.approx(500.0)
    assert sibling.temperature == pytest.approx(500.0)


def test_split_io_extent_keeps_cache_residency(kernel):
    (extent,) = kernel.allocate_region("io", PageType.PAGE_CACHE, 64, [1])
    sibling = kernel.split_extent(extent, 32)
    assert kernel.page_cache.is_resident(sibling)


def test_split_validation(kernel):
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 10, [0])
    with pytest.raises(AllocationError):
        kernel.split_extent(extent, 0)
    with pytest.raises(AllocationError):
        kernel.split_extent(extent, 10)


# ----------------------------------------------------------------------
# drop_io_extent
# ----------------------------------------------------------------------

def test_drop_io_extent_frees_without_copy(kernel):
    before = kernel.nodes[1].free_pages
    (extent,) = kernel.allocate_region("io", PageType.PAGE_CACHE, 64, [1])
    freed = kernel.drop_io_extent(extent)
    assert freed == 64
    assert kernel.nodes[1].free_pages == before
    # The region survives with no extents (data lives on disk).
    assert kernel.region_extents("io") == []


def test_drop_io_rejects_anonymous_pages(kernel):
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 10, [0])
    with pytest.raises(AllocationError):
        kernel.drop_io_extent(extent)


# ----------------------------------------------------------------------
# shrink_node / swap
# ----------------------------------------------------------------------

def test_shrink_node_counts_free_pages_first(kernel):
    freed = kernel.shrink_node(1, 100)
    assert freed == 100
    assert kernel.swap.stats.pages_out == 0


def test_shrink_node_swaps_cold_extents(kernel):
    slow = kernel.nodes[1]
    usable = slow.free_pages_for(PageType.HEAP)
    (extent,) = kernel.allocate_region("cold", PageType.HEAP, usable, [1])
    target = slow.free_pages + 1000
    freed = kernel.shrink_node(1, target)
    assert freed >= target - 64  # buddy granularity slack
    assert extent.swapped
    assert kernel.swap.stats.pages_out > 0
    assert kernel.pending_cost_ns > 0


def test_swapped_extent_faults_back_on_touch(kernel):
    slow = kernel.nodes[1]
    usable = slow.free_pages_for(PageType.HEAP)
    (extent,) = kernel.allocate_region("cold", PageType.HEAP, usable, [1])
    kernel.shrink_node(1, slow.free_pages + 1000)
    assert extent.swapped
    kernel.drain_pending_cost()
    kernel.touch_region("cold", 100.0)
    # Room exists (on fast or the slow node): some pages came back.
    assert kernel.swap.stats.pages_in > 0
    assert kernel.pending_cost_ns > 0


def test_drain_pending_cost_resets(kernel):
    kernel.pending_cost_ns = 123.0
    assert kernel.drain_pending_cost() == 123.0
    assert kernel.pending_cost_ns == 0.0


# ----------------------------------------------------------------------
# Balloon hide/reveal
# ----------------------------------------------------------------------

def test_hide_and_reveal_roundtrip(kernel):
    before = kernel.nodes[1].free_pages
    hidden = kernel.hide_pages(1, 1000)
    assert hidden == 1000
    assert kernel.hidden_pages(1) == 1000
    assert kernel.nodes[1].free_pages == before - 1000
    revealed = kernel.reveal_pages(1, 400)
    assert revealed == 400
    assert kernel.hidden_pages(1) == 600
    assert kernel.nodes[1].free_pages == before - 600


def test_hide_caps_at_free_pages(kernel):
    free = kernel.nodes[0].free_pages
    assert kernel.hide_pages(0, free + 999) == free


def test_reveal_caps_at_hidden(kernel):
    kernel.hide_pages(0, 100)
    assert kernel.reveal_pages(0, 500) == 100
