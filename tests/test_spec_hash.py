"""ExperimentSpec hashing: stability, sensitivity, and invalidation.

The cache key is the reproducibility contract: two runs share a cached
result only when *every* spec field matches and the simulator source
tree is byte-identical.  These tests pin both directions — identical
specs collide (stability) and any single-field change separates
(sensitivity) — plus the source-fingerprint invalidation path.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.hw.throttle import DEFAULT_SLOWMEM
from repro.sim.parallel import (
    ExperimentSpec,
    make_spec,
    source_fingerprint,
)
from repro.vmm.hotness import HotnessConfig

FINGERPRINT = "test-fingerprint"

#: One representative mutation per ExperimentSpec field.
FIELD_MUTATIONS = {
    "app": {"app": "redis"},
    "policy": {"policy": "heap-od"},
    "fast_ratio": {"fast_ratio": 0.5},
    "epochs": {"epochs": 9},
    "slow_gib": {"slow_gib": 4.0},
    "throttle": {"throttle": (2.0, 2.0)},
    "llc_mib": {"llc_mib": 48},
    "seed": {"seed": 11},
    "slow_device": {"slow_device": "remote-dram"},
    "policy_args": {"policy_args": {"scan_interval_epochs": 3}},
    "hotness": {"hotness": {"hot_density": 2.0}},
    "faults": {
        "faults": {"seed": 3, "faults": [{"kind": "channel-drop"}]}
    },
}


def base_spec(**overrides) -> ExperimentSpec:
    kwargs = dict(
        app="graphchi", policy="vmm-exclusive", fast_ratio=0.25, epochs=5,
    )
    kwargs.update(overrides)
    return make_spec(**kwargs)


def test_mutations_cover_every_field():
    assert set(FIELD_MUTATIONS) == {
        field.name for field in dataclasses.fields(ExperimentSpec)
    }, "add a mutation for each new ExperimentSpec field"


def test_same_spec_same_key():
    assert base_spec() == base_spec()
    assert hash(base_spec()) == hash(base_spec())
    assert base_spec().cache_key(FINGERPRINT) == base_spec().cache_key(
        FINGERPRINT
    )


@pytest.mark.parametrize("field", sorted(FIELD_MUTATIONS))
def test_any_field_change_changes_key(field):
    mutated = base_spec(**FIELD_MUTATIONS[field])
    assert mutated != base_spec()
    assert mutated.cache_key(FINGERPRINT) != base_spec().cache_key(
        FINGERPRINT
    ), f"changing {field} must produce a new cache key"


def test_fingerprint_change_changes_key():
    spec = base_spec()
    assert spec.cache_key("code-v1") != spec.cache_key("code-v2")


def test_canonical_form_is_json_stable():
    spec = base_spec(
        throttle=DEFAULT_SLOWMEM,
        policy_args={"b": 2, "a": 1},
        hotness=HotnessConfig(),
    )
    first = json.dumps(spec.canonical(), sort_keys=True)
    second = json.dumps(base_spec(
        throttle=(DEFAULT_SLOWMEM.latency_factor,
                  DEFAULT_SLOWMEM.bandwidth_factor),
        policy_args={"a": 1, "b": 2},
        hotness=dataclasses.asdict(HotnessConfig()),
    ).canonical(), sort_keys=True)
    assert first == second, (
        "ThrottleConfig/dict/HotnessConfig inputs must normalize to one "
        "canonical form"
    )


def test_normalization_sorts_mappings():
    one = make_spec("nginx", "hetero-lru", policy_args={"x": 1, "y": 2})
    two = make_spec("nginx", "hetero-lru", policy_args={"y": 2, "x": 1})
    assert one == two


def test_source_fingerprint_tracks_content(tmp_path):
    (tmp_path / "module.py").write_text("VALUE = 1\n")
    first = source_fingerprint(tmp_path)
    assert first == source_fingerprint(tmp_path), "memoized and stable"

    changed = tmp_path / "changed"
    changed.mkdir()
    (changed / "module.py").write_text("VALUE = 2\n")
    assert source_fingerprint(changed) != first, (
        "editing simulator source must change the fingerprint"
    )

    added = tmp_path / "added"
    added.mkdir()
    (added / "module.py").write_text("VALUE = 1\n")
    (added / "extra.py").write_text("")
    assert source_fingerprint(added) != first, (
        "adding a module must change the fingerprint"
    )

    renamed = tmp_path / "renamed"
    renamed.mkdir()
    (renamed / "other.py").write_text("VALUE = 1\n")
    assert source_fingerprint(renamed) != first, (
        "the fingerprint covers file paths, not just contents"
    )


def test_default_fingerprint_covers_simulator_package():
    fingerprint = source_fingerprint()
    assert len(fingerprint) == 64
    assert fingerprint == source_fingerprint(), "process-lifetime memo"


def test_unknown_device_preset_rejected():
    from repro.errors import SweepError

    with pytest.raises(SweepError, match="unknown slow-device preset"):
        make_spec("nginx", "hetero-lru", slow_device="quantum-foam")
