"""VMAs/address space, split LRU, and swap device."""

import pytest

from repro.errors import AllocationError, ConfigurationError, OutOfMemoryError
from repro.guestos.lru import SplitLru
from repro.guestos.swap import SwapDevice
from repro.guestos.vma import AddressSpace
from repro.mem.extent import ExtentState, PageExtent, PageType


# ----------------------------------------------------------------------
# Address space / VMAs
# ----------------------------------------------------------------------

def test_mmap_assigns_disjoint_ranges():
    mm = AddressSpace()
    a = mm.mmap("a", 100, PageType.HEAP)
    b = mm.mmap("b", 50, PageType.PAGE_CACHE)
    assert a.end_vpn <= b.start_vpn
    assert mm.mapped_pages == 150


def test_mmap_duplicate_region_rejected():
    mm = AddressSpace()
    mm.mmap("a", 10, PageType.HEAP)
    with pytest.raises(AllocationError):
        mm.mmap("a", 10, PageType.HEAP)
    with pytest.raises(AllocationError):
        mm.mmap("b", 0, PageType.HEAP)


def test_munmap_fires_hooks():
    mm = AddressSpace()
    released = []
    mm.add_unmap_hook(released.append)
    vma = mm.mmap("a", 10, PageType.HEAP)
    assert mm.munmap("a") == vma
    assert released == [vma]
    with pytest.raises(AllocationError):
        mm.munmap("a")


def test_find_by_vpn():
    mm = AddressSpace()
    vma = mm.mmap("a", 10, PageType.HEAP)
    assert mm.find(vma.start_vpn + 5) == vma
    assert mm.find(vma.end_vpn) is None


def test_tracking_list_contains_only_heap_vmas():
    """Section 4.1: the tracking list is heap ranges; I/O regions go on
    the exception list instead."""
    mm = AddressSpace()
    heap = mm.mmap("heap", 100, PageType.HEAP)
    mm.mmap("cache", 50, PageType.PAGE_CACHE)
    mm.mmap("skb", 10, PageType.NETWORK_BUFFER)
    assert mm.tracking_list() == [(heap.start_vpn, 100)]


# ----------------------------------------------------------------------
# Split LRU
# ----------------------------------------------------------------------

def heap_extent(pages=10, node=0) -> PageExtent:
    return PageExtent("r", PageType.HEAP, pages, node)


def test_lru_insert_active_and_duplicate_rejected():
    lru = SplitLru(node_id=0)
    extent = heap_extent()
    lru.insert(extent)
    assert extent.state is ExtentState.ACTIVE
    assert lru.active_pages == 10
    with pytest.raises(AllocationError):
        lru.insert(extent)


def test_lru_access_promotes_inactive():
    lru = SplitLru(node_id=0)
    extent = heap_extent()
    lru.insert(extent)
    lru.deactivate(extent)
    assert lru.inactive_pages == 10
    lru.record_access(extent)
    assert extent.state is ExtentState.ACTIVE
    assert lru.stats.promotions == 1


def test_lru_scan_deactivates_idle_extents():
    lru = SplitLru(node_id=0, inactive_after_epochs=2)
    busy = heap_extent()
    idle = heap_extent()
    lru.insert(busy)
    lru.insert(idle)
    busy.record_access(5, 1000.0)
    idle.record_access(0, 1000.0)
    lru.scan(current_epoch=5)
    assert idle.state is ExtentState.INACTIVE
    assert busy.state is ExtentState.ACTIVE


def test_lru_scan_deactivates_low_density_extents():
    """A huge region with a trickle of accesses must not stay active."""
    lru = SplitLru(node_id=0, cold_density_threshold=2.0)
    sparse = PageExtent("r", PageType.HEAP, 10_000, 0)
    lru.insert(sparse)
    for epoch in range(4):
        sparse.record_access(epoch, 100.0)  # density << threshold
    lru.scan(current_epoch=3)
    assert sparse.state is ExtentState.INACTIVE


def test_lru_density_grace_period_for_newborns():
    lru = SplitLru(node_id=0, inactive_after_epochs=2)
    newborn = PageExtent("r", PageType.HEAP, 10_000, 0, birth_epoch=3)
    lru.insert(newborn)
    newborn.record_access(3, 10.0)
    lru.scan(current_epoch=3)  # age 0: density rule must not fire
    assert newborn.state is ExtentState.ACTIVE


def test_lru_evict_candidates_inactive_first():
    lru = SplitLru(node_id=0)
    active = heap_extent()
    inactive = heap_extent()
    lru.insert(active)
    lru.insert(inactive)
    lru.deactivate(inactive)
    candidates = lru.evict_candidates(pages_needed=10)
    assert candidates[0] is inactive


def test_lru_evict_falls_back_to_active():
    lru = SplitLru(node_id=0)
    a, b = heap_extent(), heap_extent()
    lru.insert(a)
    lru.insert(b)
    candidates = lru.evict_candidates(pages_needed=15)
    assert len(candidates) == 2


def test_lru_remove():
    lru = SplitLru(node_id=0)
    extent = heap_extent()
    lru.insert(extent)
    lru.remove(extent)
    assert not lru.contains(extent)
    with pytest.raises(AllocationError):
        lru.remove(extent)


# ----------------------------------------------------------------------
# Swap device
# ----------------------------------------------------------------------

def test_swap_out_in_roundtrip():
    swap = SwapDevice(capacity_pages=100)
    cost_out = swap.swap_out(40)
    assert cost_out > 0
    assert swap.used_pages == 40
    cost_in = swap.swap_in(40)
    assert cost_in > cost_out  # reads cost more than writes
    assert swap.used_pages == 0
    assert swap.stats.pages_out == 40
    assert swap.stats.pages_in == 40


def test_swap_capacity_enforced():
    swap = SwapDevice(capacity_pages=10)
    swap.swap_out(10)
    with pytest.raises(OutOfMemoryError):
        swap.swap_out(1)
    with pytest.raises(OutOfMemoryError):
        swap.swap_in(11)


def test_swap_zero_is_free():
    swap = SwapDevice(capacity_pages=10)
    assert swap.swap_out(0) == 0.0
    assert swap.swap_in(0) == 0.0


def test_swap_validation():
    with pytest.raises(ConfigurationError):
        SwapDevice(capacity_pages=0)
    with pytest.raises(ConfigurationError):
        SwapDevice(capacity_pages=10, write_page_ns=-1)
