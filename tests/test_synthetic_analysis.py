"""Synthetic workload generator and run-analysis helpers."""

import pytest

from repro.cli import main
from repro.core import make_policy
from repro.errors import WorkloadError
from repro.experiments.analysis import (
    allocation_breakdown,
    summarize,
    time_breakdown,
)
from repro.mem.extent import PageType
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config, run_experiment
from repro.workloads.synthetic import make_synthetic


# ----------------------------------------------------------------------
# Synthetic generator
# ----------------------------------------------------------------------

def test_same_seed_same_workload():
    a = make_synthetic(seed=42)
    b = make_synthetic(seed=42)
    assert a.mlp == b.mlp
    assert a.accesses_per_epoch == b.accesses_per_epoch
    assert [spec.pages for spec in a.resident] == [
        spec.pages for spec in b.resident
    ]
    assert len(a.churn) == len(b.churn)


def test_different_seeds_differ():
    signatures = {
        (make_synthetic(seed=s).mlp, make_synthetic(seed=s).accesses_per_epoch)
        for s in range(6)
    }
    assert len(signatures) > 1


def test_io_intensity_zero_means_no_churn():
    workload = make_synthetic(seed=1, io_intensity=0.0)
    assert workload.churn == []
    assert workload.io_wait_ns == 0.0


def test_footprint_close_to_target():
    workload = make_synthetic(seed=3, footprint_gib=2.0)
    pages = sum(spec.pages for spec in workload.resident)
    assert pages == pytest.approx(2.0 * 262144, rel=0.02)


def test_locality_skew_concentrates_hot_share():
    skewed = make_synthetic(seed=5, locality_skew=1.0, io_intensity=0.0)
    uniform = make_synthetic(seed=5, locality_skew=0.0, io_intensity=0.0)

    def hot_share(workload):
        spec = next(s for s in workload.resident if s.label == "heap-hot")
        total = sum(s.access_share for s in workload.resident)
        return spec.access_share / total

    assert hot_share(skewed) > hot_share(uniform)


def test_parameter_validation():
    with pytest.raises(WorkloadError):
        make_synthetic(seed=1, io_intensity=1.5)
    with pytest.raises(WorkloadError):
        make_synthetic(seed=1, locality_skew=-0.1)
    with pytest.raises(WorkloadError):
        make_synthetic(seed=1, footprint_gib=0)


@pytest.mark.parametrize("seed", [11, 37])
def test_synthetic_runs_under_heteroos(seed):
    workload = make_synthetic(seed=seed, footprint_gib=1.0, run_epochs=8)
    engine = SimulationEngine(
        build_config(fast_ratio=0.25, slow_gib=4.0), workload,
        make_policy("hetero-lru"),
    )
    result = engine.run(8)
    assert result.stats.runtime_ns > 0
    engine.kernel.check_invariants()


# ----------------------------------------------------------------------
# Analysis helpers
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def result():
    return run_experiment("redis", "hetero-lru", fast_ratio=0.25, epochs=10)


def test_time_breakdown_fractions_sum_to_one(result):
    rows = time_breakdown(result)
    assert sum(row["fraction"] for row in rows) == pytest.approx(1.0)
    components = {row["component"] for row in rows}
    assert "cpu" in components and "io-wait" in components
    assert any(c.startswith("stall:") for c in components)


def test_allocation_breakdown_matches_stats(result):
    rows = allocation_breakdown(result)
    subsystems = {row["subsystem"] for row in rows}
    assert PageType.HEAP.value in subsystems
    assert PageType.NETWORK_BUFFER.value in subsystems
    for row in rows:
        assert 0.0 <= row["miss_ratio"] <= 1.0
        assert row["fastmem_pages"] <= row["requested_pages"]


def test_summarize_single_row(result):
    (row,) = summarize(result)
    assert row["workload"] == "redis"
    assert row["runtime_sec"] == pytest.approx(result.runtime_sec)


def test_cli_breakdown_flag(capsys):
    code = main(
        ["run", "nginx", "hetero-lru", "--epochs", "4", "--breakdown"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "stall:" in out
    assert "subsystem" in out
