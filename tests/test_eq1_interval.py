"""Equation 1: the LLC-miss-adaptive tracking interval."""

import pytest

from repro.core.coordinated import next_interval_ms


def test_rising_misses_shorten_interval():
    assert next_interval_ms(200.0, llc_delta=0.5) == pytest.approx(100.0)


def test_falling_misses_lengthen_interval():
    assert next_interval_ms(200.0, llc_delta=-0.5) == pytest.approx(300.0)


def test_stable_misses_keep_interval():
    assert next_interval_ms(200.0, llc_delta=0.0) == pytest.approx(200.0)


def test_clamped_to_paper_range():
    # "dynamically vary the hotness scanning interval from 50ms to 1
    # second" (Section 5.4).
    assert next_interval_ms(60.0, llc_delta=5.0) == 50.0
    assert next_interval_ms(900.0, llc_delta=-5.0) == 1000.0


def test_custom_clamp_range():
    assert next_interval_ms(100.0, 10.0, min_ms=10.0, max_ms=500.0) == 10.0
    assert next_interval_ms(100.0, -10.0, min_ms=10.0, max_ms=500.0) == 500.0


def test_interval_never_negative_or_zero():
    for delta in (-10.0, -1.0, 0.0, 0.99, 1.0, 10.0):
        assert next_interval_ms(100.0, delta) >= 50.0
