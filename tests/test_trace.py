"""Trace capture and replay."""

import pytest

from repro.core import make_policy
from repro.errors import WorkloadError
from repro.sim.engine import SimulationEngine
from repro.sim.runner import build_config
from repro.sim.trace import (
    TraceWorkload,
    load_trace,
    record_trace,
    save_trace,
)
from repro.workloads.registry import make_workload


def test_record_trace_shape():
    trace = record_trace(make_workload("nginx"), epochs=5)
    assert trace["name"] == "nginx"
    assert len(trace["epochs"]) == 5
    first = trace["epochs"][0]
    assert first["allocs"]  # residents allocated at epoch 0
    assert first["accesses"]


def test_trace_roundtrips_through_json(tmp_path):
    path = tmp_path / "nginx.trace.json"
    save_trace(path, make_workload("nginx"), epochs=5)
    replay = load_trace(path)
    assert replay.name == "nginx"
    assert replay.default_epochs() == 5
    demands = list(replay.epochs(5))
    assert demands[0].allocs
    assert demands[0].accesses


def test_replay_matches_original_run():
    """Replaying a trace is bit-identical to running the workload."""
    config = build_config(fast_ratio=0.25)
    original = SimulationEngine(
        config, make_workload("nginx"), make_policy("hetero-lru")
    ).run(10)

    replayed_workload = TraceWorkload.from_dict(
        record_trace(make_workload("nginx"), epochs=10)
    )
    replayed = SimulationEngine(
        build_config(fast_ratio=0.25), replayed_workload,
        make_policy("hetero-lru"),
    ).run(10)
    assert replayed.stats.runtime_ns == original.stats.runtime_ns
    assert replayed.stats.llc_misses == original.stats.llc_misses
    assert replayed.alloc_stats == original.alloc_stats


def test_trace_refuses_over_read():
    replay = TraceWorkload.from_dict(
        record_trace(make_workload("nginx"), epochs=3)
    )
    with pytest.raises(WorkloadError):
        list(replay.epochs(5))


def test_trace_version_check():
    trace = record_trace(make_workload("nginx"), epochs=1)
    trace["format_version"] = 99
    with pytest.raises(WorkloadError):
        TraceWorkload.from_dict(trace)


def test_empty_trace_rejected():
    with pytest.raises(WorkloadError):
        TraceWorkload("t", 4.0, "seconds", 0.0, [])
