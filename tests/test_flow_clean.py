"""Meta-test: the shipped tree must pass ``repro lint --deep`` clean.

Any new heteroflow finding is either a real bug (fix it), a
line-suppressible false positive (``# heterolint: disable-next-line=``
works for deep rules too), or an intentional cross-module exception —
which belongs in ``heteroflow-baseline.json`` with a one-line
justification.  See docs/devtools.md.
"""

from __future__ import annotations

import pathlib

import repro
from repro.devtools.flow import DEFAULT_BASELINE, Baseline, deep_lint_paths

PACKAGE_DIR = pathlib.Path(repro.__file__).parent
REPO_ROOT = PACKAGE_DIR.parent.parent
BASELINE_PATH = REPO_ROOT / DEFAULT_BASELINE


def test_shipped_tree_has_zero_unbaselined_deep_findings():
    baseline = Baseline.load(BASELINE_PATH)
    report, index = deep_lint_paths([PACKAGE_DIR], baseline=baseline)
    assert report.files_checked >= 80
    assert index.files_indexed >= 80
    assert report.findings == [], "\n" + report.format_human()
    # The baseline must not rot: every entry still matches a finding.
    stale = baseline.stale_entries()
    assert stale == [], f"stale baseline entries: {stale}"
