"""Migration engine and Table 6 cost model."""

import pytest

from conftest import make_kernel
from repro.errors import MigrationError
from repro.mem.extent import PageType
from repro.units import NS_PER_US
from repro.vmm.migration import (
    MigrationCostModel,
    MigrationEngine,
    TABLE6_ANCHORS,
)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------

def test_anchor_costs_exact():
    model = MigrationCostModel()
    for batch, (move_ns, walk_ns) in TABLE6_ANCHORS.items():
        assert model.per_page_costs(batch) == pytest.approx((move_ns, walk_ns))


def test_interpolation_between_anchors():
    model = MigrationCostModel()
    move, walk = model.per_page_costs(32 * 1024)
    assert 15.7 * NS_PER_US < move < 25.5 * NS_PER_US
    assert 26.32 * NS_PER_US < walk < 43.21 * NS_PER_US


def test_clamping_outside_anchor_range():
    model = MigrationCostModel()
    assert model.per_page_costs(1) == model.per_page_costs(8 * 1024)
    assert model.per_page_costs(10**9) == model.per_page_costs(128 * 1024)


def test_costs_monotone_decreasing_in_batch():
    model = MigrationCostModel()
    batches = [8 * 1024, 16 * 1024, 64 * 1024, 100_000, 128 * 1024]
    moves = [model.per_page_costs(b)[0] for b in batches]
    walks = [model.per_page_costs(b)[1] for b in batches]
    assert moves == sorted(moves, reverse=True)
    assert walks == sorted(walks, reverse=True)


def test_total_cost_helper():
    model = MigrationCostModel()
    move, walk = model.per_page_costs(8 * 1024)
    assert model.migration_cost_ns(10, 8 * 1024) == pytest.approx(
        10 * (move + walk)
    )


def test_invalid_inputs_rejected():
    model = MigrationCostModel()
    with pytest.raises(MigrationError):
        model.per_page_costs(0)
    with pytest.raises(MigrationError):
        MigrationCostModel(anchors={8192: (1.0, 2.0)})


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

def test_migrate_moves_extents_and_charges_cost():
    kernel = make_kernel()
    engine = MigrationEngine()
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 256, [1])
    report = engine.migrate([extent], 0, kernel)
    assert report.pages_moved == 256
    assert extent.node_id == 0
    assert report.cost_ns > 0
    assert engine.total.pages_moved == 256


def test_stall_fraction_scales_charged_cost():
    kernel_a, kernel_b = make_kernel(), make_kernel()
    cheap = MigrationEngine(stall_fraction=0.1)
    expensive = MigrationEngine(stall_fraction=1.0)
    (a,) = kernel_a.allocate_region("r", PageType.HEAP, 256, [1])
    (b,) = kernel_b.allocate_region("r", PageType.HEAP, 256, [1])
    cheap_cost = cheap.migrate([a], 0, kernel_a).cost_ns
    full_cost = expensive.migrate([b], 0, kernel_b).cost_ns
    assert cheap_cost < full_cost


def test_budget_splits_oversized_extents():
    kernel = make_kernel()
    engine = MigrationEngine()
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 1000, [1])
    report = engine.migrate([extent], 0, kernel, budget_pages=300)
    assert report.pages_moved == 300
    # The region now has a moved prefix and an unmoved tail.
    nodes = {e.node_id for e in kernel.region_extents("r")}
    assert nodes == {0, 1}
    total = sum(e.pages for e in kernel.region_extents("r"))
    assert total == 1000


def test_budget_zero_moves_nothing():
    kernel = make_kernel()
    engine = MigrationEngine()
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 100, [1])
    report = engine.migrate([extent], 0, kernel, budget_pages=0)
    assert report.pages_moved == 0
    assert extent.node_id == 1


def test_unmigratable_pages_charged_as_rejected():
    kernel = make_kernel()
    engine = MigrationEngine()
    (extent,) = kernel.allocate_region("pt", PageType.PAGE_TABLE, 8, [1])
    report = engine.migrate([extent], 0, kernel)
    assert report.pages_moved == 0
    assert report.pages_rejected == 8
    assert report.cost_ns > 0  # the wasted walk still costs


def test_full_target_without_eviction_fails():
    kernel = make_kernel()
    engine = MigrationEngine()
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("fill", PageType.HEAP, fast, [0])
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 64, [1])
    report = engine.migrate([extent], 0, kernel)
    assert report.pages_failed == 64
    assert extent.node_id == 1


def test_eviction_callback_makes_room():
    kernel = make_kernel()
    engine = MigrationEngine()
    fast = kernel.nodes[0].free_pages_for(PageType.HEAP)
    kernel.allocate_region("fill", PageType.HEAP, fast, [0])
    (extent,) = kernel.allocate_region("r", PageType.HEAP, 64, [1])

    def evict(target_node_id, pages_needed):
        victim = kernel.region_extents("fill")[0]
        if victim.pages > pages_needed:
            kernel.split_extent(victim, pages_needed)
        return kernel.move_extent(victim, 1)

    report = engine.migrate([extent], 0, kernel, evict_with=evict)
    assert report.pages_moved == 64
    assert report.evicted_pages >= 64
    assert extent.node_id == 0


def test_swapped_and_same_node_extents_skipped():
    kernel = make_kernel()
    engine = MigrationEngine()
    (home,) = kernel.allocate_region("home", PageType.HEAP, 32, [0])
    report = engine.migrate([home], 0, kernel)
    assert report.pages_moved == 0
    assert report.cost_ns == 0.0
